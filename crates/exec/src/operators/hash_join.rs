//! Hybrid and Grace (recursive) hash joins (§4.2.1) — the conventional
//! baselines the double pipelined join is measured against.
//!
//! The **right child is the inner (build) relation**: it is drained into a
//! bucketed hash table at `open` (the non-pipelined phase whose cost the
//! paper's Figure 3 exposes). Hybrid hashing is lazy: buckets spill only
//! when memory runs out; whatever remains in memory streams matches
//! immediately during the probe phase. Grace hashing partitions everything
//! to disk up front.

use std::sync::Arc;
use std::time::Instant;

use tukwila_common::{
    KeyVector, KeyedBatch, OutputQueue, Result, Schema, TukwilaError, Tuple, TupleBatch,
};
use tukwila_storage::SpillBucket;
use tukwila_trace::{OpMetrics, TraceEvent};

use crate::operator::{Operator, OperatorBox};
use crate::operators::hash_table::{join_sets, BucketedTable};
use crate::runtime::OpHarness;

/// Number of hash buckets ("can be set by an optimizer"; fixed default
/// here, overridable via [`HashJoinOp::with_buckets`]).
const DEFAULT_BUCKETS: usize = 16;

enum Phase {
    Build,
    Probe,
    Cleanup(usize),
    Done,
}

/// Hybrid (or Grace) hash join.
pub struct HashJoinOp {
    left: OperatorBox,
    right: OperatorBox,
    left_key: String,
    right_key: String,
    grace: bool,
    num_buckets: usize,
    harness: OpHarness,
    // after open:
    schema: Schema,
    lkey: usize,
    rkey: usize,
    build: Option<BucketedTable>,
    probe_spill: Vec<Option<SpillBucket>>,
    pending: OutputQueue,
    /// The probe batch currently being drained, prehashed once on arrival
    /// (NULL-keyed rows are skipped at consumption — they never join).
    /// Probing pauses once a full output block is ready, bounding
    /// `pending` to batch_size plus a single probe tuple's fanout.
    probe_queue: Option<KeyedBatch>,
    phase: Phase,
    raised_oom: bool,
    /// Cached at open: `OpHarness::reservation` is a subject-map lookup +
    /// `Arc` clone, far too expensive for the per-insert overflow check.
    reservation: Option<tukwila_storage::MemoryReservation>,
    /// Metrics handle (Some only at `TraceLevel::Metrics`).
    metrics: Option<Arc<OpMetrics>>,
    /// When the current probe batch started draining (probe timing).
    probe_at: Option<Instant>,
    /// Tuples this run diverted to spill storage.
    spilled_tuples: u64,
    /// The overflow-resolved event was emitted (once per run).
    resolved_emitted: bool,
}

impl HashJoinOp {
    /// Build a hybrid hash join (right child = inner/build side).
    pub fn hybrid(
        left: OperatorBox,
        right: OperatorBox,
        left_key: String,
        right_key: String,
        harness: OpHarness,
    ) -> Self {
        Self::new(left, right, left_key, right_key, false, harness)
    }

    /// Build a Grace hash join (partitions both inputs fully before
    /// joining).
    pub fn grace(
        left: OperatorBox,
        right: OperatorBox,
        left_key: String,
        right_key: String,
        harness: OpHarness,
    ) -> Self {
        Self::new(left, right, left_key, right_key, true, harness)
    }

    fn new(
        left: OperatorBox,
        right: OperatorBox,
        left_key: String,
        right_key: String,
        grace: bool,
        harness: OpHarness,
    ) -> Self {
        HashJoinOp {
            left,
            right,
            left_key,
            right_key,
            grace,
            num_buckets: DEFAULT_BUCKETS,
            harness,
            schema: Schema::empty(),
            lkey: 0,
            rkey: 0,
            build: None,
            probe_spill: Vec::new(),
            pending: OutputQueue::new(tukwila_common::DEFAULT_BATCH_CAPACITY),
            probe_queue: None,
            phase: Phase::Build,
            raised_oom: false,
            reservation: None,
            metrics: None,
            probe_at: None,
            spilled_tuples: 0,
            resolved_emitted: false,
        }
    }

    /// Override the bucket count.
    pub fn with_buckets(mut self, n: usize) -> Self {
        self.num_buckets = n.max(1);
        self
    }

    fn resolve_overflow(&mut self) -> Result<()> {
        let Some(res) = self.reservation.as_ref() else {
            return Ok(());
        };
        // `under_pressure` folds in query- and fleet-level budgets from the
        // memory governor, not just this operator's own reservation.
        while res.under_pressure() {
            if !self.raised_oom {
                self.raised_oom = true;
                self.harness.out_of_memory();
                let trace = self.harness.trace();
                if trace.events_enabled() {
                    trace.emit(TraceEvent::OverflowOnset {
                        op: self.harness.op_id().unwrap_or(u32::MAX),
                        method: if self.grace {
                            "GracePartition".into()
                        } else {
                            "HybridLazyFlush".into()
                        },
                    });
                }
            }
            let build = self.build.as_mut().unwrap();
            match build.largest_unflushed() {
                Some(b) => {
                    let n = build.flush_bucket(b)? as u64;
                    self.spilled_tuples += n;
                    let trace = self.harness.trace();
                    if n > 0 && trace.events_enabled() {
                        trace.emit(TraceEvent::SpillWrite {
                            op: self.harness.op_id().unwrap_or(u32::MAX),
                            tuples: n,
                        });
                    }
                }
                None => {
                    // Everything flushed and still over budget: the budget is
                    // smaller than the bucket bookkeeping itself; nothing
                    // more to free.
                    break;
                }
            }
        }
        Ok(())
    }

    fn build_phase(&mut self) -> Result<()> {
        if self.grace {
            // Grace: partition everything to disk from the start.
            let build = self.build.as_mut().unwrap();
            for b in 0..build.num_buckets() {
                build.flush_bucket(b)?;
            }
        }
        while let Some(batch) = self.right.next_batch()? {
            // One key-prehash pass per batch; inserts reuse the hash for
            // bucket routing and group lookup (no rehash, no key clone).
            let kv = KeyVector::compute(&batch, self.rkey);
            for (i, t) in batch.into_iter().enumerate() {
                let Some(hash) = kv.get(i) else {
                    continue; // NULL key never joins
                };
                let build = self.build.as_mut().unwrap();
                let b = build.bucket_for_hash(hash);
                if build.is_flushed(b) {
                    build.spill_new(b, &t)?;
                    self.spilled_tuples += 1;
                } else {
                    build.insert_hashed(hash, t);
                    self.resolve_overflow()?;
                }
            }
        }
        Ok(())
    }

    fn probe_one(&mut self, t: Tuple, hash: u64) -> Result<()> {
        let build = self.build.as_ref().unwrap();
        let b = build.bucket_for_hash(hash);
        if build.is_flushed(b) {
            let spill = self.harness.spill();
            if self.probe_spill[b].is_none() {
                self.probe_spill[b] = Some(spill.create_bucket(&format!("hj-probe-{b}")));
            }
            spill.write(self.probe_spill[b].unwrap(), std::slice::from_ref(&t))?;
            self.spilled_tuples += 1;
        } else {
            let key = t.value(self.lkey);
            for m in build.probe_hashed(hash, key) {
                self.pending.push_concat(&t, m);
            }
        }
        Ok(())
    }

    fn cleanup_bucket(&mut self, b: usize) -> Result<()> {
        let build = self.build.as_ref().unwrap();
        if !build.is_flushed(b) {
            return Ok(());
        }
        let mut build_set = build.old_tuples(b)?;
        build_set.extend(build.new_tuples(b)?);
        let spill = self.harness.spill();
        let probe_set = match self.probe_spill[b] {
            Some(sb) => spill.read_all(sb)?,
            None => Vec::new(),
        };
        let read_back = (build_set.len() + probe_set.len()) as u64;
        let trace = self.harness.trace();
        if read_back > 0 && trace.events_enabled() {
            trace.emit(TraceEvent::SpillRead {
                op: self.harness.op_id().unwrap_or(u32::MAX),
                tuples: read_back,
            });
        }
        if build_set.is_empty() || probe_set.is_empty() {
            return Ok(());
        }
        let budget = self.harness.reservation().map(|r| r.budget());
        let mut out = Vec::new();
        join_sets(
            build_set, probe_set, self.rkey, self.lkey, budget, 0, &spill, true, &mut out,
        )?;
        self.pending.extend_tuples(out);
        Ok(())
    }
}

impl Operator for HashJoinOp {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.lkey = self.left.schema().index_of(&self.left_key)?;
        self.rkey = self.right.schema().index_of(&self.right_key)?;
        self.schema = self.left.schema().concat(self.right.schema());
        self.reservation = self.harness.reservation();
        self.build = Some(BucketedTable::new(
            format!("hj-build-{}", self.harness.subject()),
            self.num_buckets,
            self.rkey,
            self.reservation.clone(),
            self.harness.spill(),
        ));
        self.probe_spill = vec![None; self.num_buckets];
        // Typed queue: join output seals directly into columnar batches.
        self.pending = OutputQueue::typed(
            self.harness.batch_size(),
            self.schema.fields().iter().map(|f| f.data_type).collect(),
        );
        self.metrics = self.harness.metrics(self.name());
        self.spilled_tuples = 0;
        self.resolved_emitted = false;
        self.harness.opened();
        // The blocking build phase happens at open: this is precisely the
        // "time to first tuple is extended by the hash join's non-pipelined
        // behavior when it is reading the inner relation" of §4.2.1.
        let t0 = self.metrics.as_ref().map(|_| Instant::now());
        self.build_phase()?;
        if let (Some(m), Some(t0)) = (&self.metrics, t0) {
            m.add_build_ns(t0.elapsed().as_nanos() as u64);
        }
        self.phase = Phase::Probe;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        let max = self.harness.batch_size();
        loop {
            // Emit once a full block exists, or when output is pending and
            // the next step would pull (possibly blocking) probe input.
            let block_ready = self.pending.len() >= max
                || (!self.pending.is_empty()
                    && match self.phase {
                        Phase::Probe => {
                            self.probe_queue.as_ref().is_none_or(|q| q.remaining() == 0)
                        }
                        Phase::Done => true,
                        _ => false, // cleanup steps are local; keep filling
                    });
            if block_ready {
                let out = self.pending.pop_block().unwrap_or_default();
                if let Some(m) = &self.metrics {
                    m.add_output(out.len() as u64);
                }
                self.harness.produced(out.len() as u64);
                return Ok(Some(out));
            }
            match self.phase {
                Phase::Build => {
                    return Err(TukwilaError::Internal(
                        "HashJoin::next_batch before open".into(),
                    ))
                }
                Phase::Probe => match self.probe_queue.as_mut().map(KeyedBatch::next) {
                    Some(Some((t, hash))) => {
                        if let Some(hash) = hash {
                            self.probe_one(t, hash)?;
                        }
                        // NULL probe keys never join; skip.
                    }
                    Some(None) => {
                        self.probe_queue = None;
                        if let (Some(m), Some(t0)) = (&self.metrics, self.probe_at.take()) {
                            m.add_probe_ns(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    None => match self.left.next_batch()? {
                        Some(batch) => {
                            if let Some(m) = &self.metrics {
                                m.add_input(batch.len() as u64);
                                self.probe_at = Some(Instant::now());
                            }
                            // Prehash the probe batch once and drain it in
                            // place.
                            self.probe_queue = Some(KeyedBatch::new(batch, self.lkey));
                        }
                        None => self.phase = Phase::Cleanup(0),
                    },
                },
                Phase::Cleanup(b) => {
                    if b >= self.num_buckets {
                        if self.raised_oom && !self.resolved_emitted {
                            self.resolved_emitted = true;
                            let trace = self.harness.trace();
                            if trace.events_enabled() {
                                trace.emit(TraceEvent::OverflowResolved {
                                    op: self.harness.op_id().unwrap_or(u32::MAX),
                                    tuples_spilled: self.spilled_tuples,
                                });
                            }
                        }
                        self.phase = Phase::Done;
                    } else {
                        self.cleanup_bucket(b)?;
                        self.phase = Phase::Cleanup(b + 1);
                    }
                }
                Phase::Done => return Ok(None),
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()?;
        self.right.close()?;
        if let Some(mut b) = self.build.take() {
            b.clear();
            self.pending.clear();
            self.probe_queue = None;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        if self.grace {
            "grace_hash_join"
        } else {
            "hybrid_hash_join"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drain;
    use crate::runtime::{ExecEnv, OpHarness, PlanRuntime};
    use std::sync::Arc;
    use tukwila_common::{tuple, DataType, Relation};
    use tukwila_plan::{JoinKind, PlanBuilder, SubjectRef};
    use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

    fn rel(name: &str, n: i64, dup: i64) -> Relation {
        let schema =
            tukwila_common::Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i % dup, i]);
        }
        r
    }

    /// Build a hash join over two registered sources with optional memory
    /// budget; returns (op, runtime, gold result).
    fn setup(
        l: Relation,
        r: Relation,
        budget: Option<usize>,
        grace: bool,
    ) -> (HashJoinOp, Arc<PlanRuntime>, Relation) {
        let gold = l.nested_join(&r, 0, 0);
        let registry = SourceRegistry::new();
        registry.register(SimulatedSource::new("L", l, LinkModel::instant()));
        registry.register(SimulatedSource::new("R", r, LinkModel::instant()));

        let mut b = PlanBuilder::new();
        let ls = b.wrapper_scan("L");
        let rs = b.wrapper_scan("R");
        let mut j = b.join(JoinKind::HybridHash, ls, rs, "k", "k");
        if let Some(bytes) = budget {
            j = j.with_memory(bytes);
        }
        let jid = j.id;
        let (l_id, r_id) = (tukwila_plan::OpId(0), tukwila_plan::OpId(1));
        let f = b.fragment(j, "out");
        let plan = b.build(f);
        let rt = PlanRuntime::for_plan(&plan, ExecEnv::new(registry));

        let mk = |id| OpHarness::new(rt.clone(), SubjectRef::Op(id));
        let left = Box::new(crate::operators::WrapperScan::new(
            "L".into(),
            None,
            None,
            mk(l_id),
        ));
        let right = Box::new(crate::operators::WrapperScan::new(
            "R".into(),
            None,
            None,
            mk(r_id),
        ));
        let op = if grace {
            HashJoinOp::grace(left, right, "k".into(), "k".into(), mk(jid))
        } else {
            HashJoinOp::hybrid(left, right, "k".into(), "k".into(), mk(jid))
        }
        .with_buckets(8);
        (op, rt, gold)
    }

    fn assert_matches_gold(out: Vec<Tuple>, gold: &Relation) {
        let got = Relation::new(gold.schema().clone(), out).unwrap();
        assert!(
            got.bag_eq(gold),
            "result mismatch: got {} tuples, want {}",
            got.len(),
            gold.len()
        );
    }

    #[test]
    fn hybrid_in_memory_matches_gold() {
        let (mut op, _, gold) = setup(rel("l", 100, 10), rel("r", 50, 10), None, false);
        let out = drain(&mut op).unwrap();
        assert_matches_gold(out, &gold);
    }

    #[test]
    fn hybrid_with_overflow_matches_gold_and_spills() {
        let (mut op, rt, gold) = setup(
            rel("l", 200, 20),
            rel("r", 200, 20),
            Some(2_000), // far below the build side's footprint
            false,
        );
        let out = drain(&mut op).unwrap();
        assert_matches_gold(out, &gold);
        let stats = rt.env().spill.stats();
        assert!(stats.tuples_written() > 0, "must have spilled");
        assert!(rt
            .event_log()
            .iter()
            .any(|e| e.kind == tukwila_plan::EventKind::OutOfMemory));
    }

    #[test]
    fn grace_matches_gold_and_spills_everything() {
        let (mut op, rt, gold) = setup(rel("l", 120, 12), rel("r", 60, 12), None, true);
        let out = drain(&mut op).unwrap();
        assert_matches_gold(out, &gold);
        // Grace partitions the full build side to disk.
        assert!(rt.env().spill.stats().tuples_written() >= 60);
    }

    #[test]
    fn empty_inputs() {
        let (mut op, _, gold) = setup(rel("l", 0, 1), rel("r", 10, 2), None, false);
        let out = drain(&mut op).unwrap();
        assert_eq!(gold.len(), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn null_keys_skipped() {
        let schema = tukwila_common::Schema::of("l", &[("k", DataType::Int), ("v", DataType::Int)]);
        let mut l = Relation::empty(schema.clone());
        l.push(Tuple::new(vec![tukwila_common::Value::Null, 1i64.into()]));
        l.push(tuple![1, 2]);
        let mut r = Relation::empty(schema);
        r.push(Tuple::new(vec![tukwila_common::Value::Null, 3i64.into()]));
        r.push(tuple![1, 4]);
        let (mut op, _, gold) = setup(l, r, None, false);
        let out = drain(&mut op).unwrap();
        assert_eq!(gold.len(), 1);
        assert_matches_gold(out, &gold);
    }

    #[test]
    fn skewed_duplicate_keys_with_tiny_budget() {
        // all tuples share one key: one giant bucket; recursion in cleanup
        let (mut op, _, gold) = setup(rel("l", 40, 1), rel("r", 40, 1), Some(500), false);
        let out = drain(&mut op).unwrap();
        assert_eq!(gold.len(), 1600);
        assert_matches_gold(out, &gold);
    }
}
