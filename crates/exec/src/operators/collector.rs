//! The dynamic collector (§4.1): a policy-driven union over a large set of
//! possibly overlapping or redundant sources.
//!
//! "The query execution engine implements the policy by contacting data
//! sources in parallel, monitoring the state of each connection, and adding
//! or dropping connections as required by error and latency conditions. A
//! key aspect distinguishing the collector operator from a standard union
//! is flexibility to contact only some of the sources."
//!
//! The policy itself is a set of event-condition-action rules in the
//! enclosing plan (the paper's example: race two mirrors, kill the loser at
//! a tuple threshold, activate a third source on timeout). The collector's
//! job here is mechanics: one thread per active child streaming into a
//! shared queue; `opened`/`closed`/`error`/`timeout`/`threshold` events per
//! child; children activated by rules are picked up mid-flight, children
//! deactivated by rules are cancelled and their buffered tuples dropped.

use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, RecvTimeoutError, Sender};

use tukwila_common::{Result, Schema, TukwilaError, TupleBatch};
use tukwila_plan::{CollectorChildSpec, OpState, QuantityProvider, SubjectRef};
use tukwila_source::SourceBatchEvent;

use crate::operator::Operator;
use crate::runtime::OpHarness;

enum ChildMsg {
    Batch(usize, TupleBatch),
    End(usize),
    Error(usize, String),
}

struct ChildState {
    spec: CollectorChildSpec,
    spawned: bool,
    done: bool,
    failed: bool,
    delivered: usize,
    last_activity: Instant,
    timeout_raised: bool,
}

/// The dynamic collector operator.
pub struct Collector {
    children: Vec<ChildState>,
    quota: Option<usize>,
    child_timeout: Option<Duration>,
    harness: OpHarness,
    schema: Schema,
    tx: Option<Sender<ChildMsg>>,
    rx: Option<Receiver<ChildMsg>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    emitted: usize,
    opened: bool,
}

impl Collector {
    /// Build a collector from its child specs.
    pub fn new(
        children: Vec<CollectorChildSpec>,
        quota: Option<usize>,
        child_timeout_ms: Option<u64>,
        harness: OpHarness,
    ) -> Self {
        Collector {
            children: children
                .into_iter()
                .map(|spec| ChildState {
                    spec,
                    spawned: false,
                    done: false,
                    failed: false,
                    delivered: 0,
                    last_activity: Instant::now(),
                    timeout_raised: false,
                })
                .collect(),
            quota,
            child_timeout: child_timeout_ms.map(Duration::from_millis),
            harness,
            schema: Schema::empty(),
            tx: None,
            rx: None,
            threads: Vec::new(),
            emitted: 0,
            opened: false,
        }
    }

    fn spawn_child(&mut self, idx: usize) -> Result<()> {
        let rt = self.harness.runtime().clone();
        let spec = self.children[idx].spec.clone();
        let wrapper = rt.env().sources.wrapper(&spec.source)?;
        let tx = self.tx.as_ref().unwrap().clone();
        let subject = SubjectRef::Op(spec.id);
        let batch_size = rt.env().batch_size;
        rt.set_state(subject, OpState::Open);
        self.children[idx].spawned = true;
        self.children[idx].last_activity = Instant::now();
        let thread_rt = rt.clone();
        // Each child hands its arrival bursts over as whole batches — one
        // queue message per burst rather than per tuple. Children fetch
        // through the shared source-result cache like plain wrapper scans
        // (the open happens on the child thread, so a coalesced wait never
        // blocks the collector; `register_cancel` flips handles registered
        // after a deactivation, so a rule firing in the spawn window still
        // cancels the stream).
        self.threads.push(std::thread::spawn(move || {
            let mut stream =
                match crate::operators::open_source_stream(&thread_rt, subject, &wrapper, |w| {
                    w.fetch()
                }) {
                    Ok(Some(s)) => s,
                    // Wait cancelled, or the whole query was: end quietly like
                    // any other cancelled child (query-level cancellation is
                    // reported by the fragment loop, not by this thread).
                    Ok(None) | Err(_) => {
                        let _ = tx.send(ChildMsg::End(idx));
                        return;
                    }
                };
            thread_rt.register_cancel(subject, stream.cancel_handle());
            loop {
                match stream.next_batch_event(batch_size) {
                    SourceBatchEvent::Batch(b) => {
                        if tx.send(ChildMsg::Batch(idx, b)).is_err() {
                            return;
                        }
                    }
                    SourceBatchEvent::End => {
                        let _ = tx.send(ChildMsg::End(idx));
                        return;
                    }
                    SourceBatchEvent::Cancelled => {
                        let _ = tx.send(ChildMsg::End(idx));
                        return;
                    }
                    SourceBatchEvent::Error(e) => {
                        let _ = tx.send(ChildMsg::Error(idx, e));
                        return;
                    }
                }
            }
        }));
        Ok(())
    }

    /// Start any children that rules have activated since the last poll.
    fn spawn_activated(&mut self) -> Result<()> {
        let rt = self.harness.runtime().clone();
        for idx in 0..self.children.len() {
            let c = &self.children[idx];
            if !c.spawned && !c.done && rt.is_active(SubjectRef::Op(c.spec.id)) {
                self.spawn_child(idx)?;
            }
        }
        Ok(())
    }

    fn live_children(&self) -> usize {
        let rt = self.harness.runtime();
        self.children
            .iter()
            .filter(|c| c.spawned && !c.done && rt.is_active(SubjectRef::Op(c.spec.id)))
            .count()
    }

    fn pending_activation_possible(&self) -> bool {
        // Called after `spawn_activated`, so any child a rule has already
        // activated is spawned. Once every spawned child is done, no
        // further event can originate from this collector, hence no
        // self-contained policy rule can activate a standby anymore — the
        // stream is over. (A rule triggered by an event *outside* the
        // collector could in principle still fire; such policies must keep
        // the collector alive via an active child instead.)
        self.children.iter().any(|c| {
            !c.spawned && !c.done && self.harness.runtime().is_active(SubjectRef::Op(c.spec.id))
        })
    }

    fn check_child_timeouts(&mut self) {
        let Some(to) = self.child_timeout else { return };
        let rt = self.harness.runtime().clone();
        for c in &mut self.children {
            let subject = SubjectRef::Op(c.spec.id);
            if c.spawned
                && !c.done
                && !c.timeout_raised
                && rt.is_active(subject)
                && c.last_activity.elapsed() >= to
            {
                c.timeout_raised = true;
                rt.emit(tukwila_plan::Event::with_value(
                    tukwila_plan::EventKind::Timeout,
                    subject,
                    to.as_millis() as u64,
                ));
            }
        }
    }
}

impl Operator for Collector {
    fn open(&mut self) -> Result<()> {
        if self.children.is_empty() {
            return Err(TukwilaError::Plan("collector with no children".into()));
        }
        // Schema comes from the first child's source (all children serve
        // the same mediated relation).
        let rt = self.harness.runtime().clone();
        let first = rt.env().sources.wrapper(&self.children[0].spec.source)?;
        self.schema = first.schema().clone();
        for c in &self.children {
            let w = rt.env().sources.wrapper(&c.spec.source)?;
            if w.schema().arity() != self.schema.arity() {
                return Err(TukwilaError::Schema(format!(
                    "collector child `{}` arity {} != {}",
                    c.spec.source,
                    w.schema().arity(),
                    self.schema.arity()
                )));
            }
        }
        // Capacity is in *batches* (each message carries a whole arrival
        // burst), so the in-flight bound scales with the batch size; 16
        // batches keeps backpressure comparable to the tuple-era queue.
        let (tx, rx) = bounded::<ChildMsg>(16);
        self.tx = Some(tx);
        self.rx = Some(rx);
        self.emitted = 0;
        self.opened = true;
        self.harness.opened();
        self.spawn_activated()?;
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if !self.opened {
            return Err(TukwilaError::Internal("Collector before open".into()));
        }
        let rt = self.harness.runtime().clone();
        loop {
            if let Some(q) = self.quota {
                if self.emitted >= q {
                    return Ok(None);
                }
            }
            // Timeout checks may fire rules that activate standby children;
            // spawn *after* them so a fallback activated by a rule is seen
            // before the end-of-stream check below.
            self.check_child_timeouts();
            self.spawn_activated()?;
            if self.live_children() == 0 && !self.pending_activation_possible() {
                // No data can arrive anymore. Total failure with zero
                // output is surfaced as an error; partial delivery is a
                // policy outcome, not an error.
                let all_failed = self.children.iter().filter(|c| c.spawned).all(|c| c.failed)
                    && self.children.iter().any(|c| c.spawned);
                if all_failed && self.emitted == 0 {
                    return Err(TukwilaError::SourceUnavailable {
                        source: self
                            .children
                            .iter()
                            .map(|c| c.spec.source.as_str())
                            .collect::<Vec<_>>()
                            .join("|"),
                        reason: "all collector children failed".into(),
                    });
                }
                return Ok(None);
            }
            let msg = match self
                .rx
                .as_ref()
                .unwrap()
                .recv_timeout(Duration::from_millis(2))
            {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => continue, // poll activations
                Err(RecvTimeoutError::Disconnected) => return Ok(None),
            };
            match msg {
                ChildMsg::Batch(idx, mut batch) => {
                    let subject = SubjectRef::Op(self.children[idx].spec.id);
                    if !rt.is_active(subject) {
                        continue; // killed child: drop buffered batches
                    }
                    if let Some(q) = self.quota {
                        batch.truncate(q.saturating_sub(self.emitted));
                        if batch.is_empty() {
                            continue;
                        }
                    }
                    let n = batch.len();
                    self.children[idx].delivered += n;
                    self.children[idx].last_activity = Instant::now();
                    rt.add_produced(subject, n as u64); // drives threshold(child, n)
                    self.emitted += n;
                    self.harness.produced(n as u64);
                    return Ok(Some(batch));
                }
                ChildMsg::End(idx) => {
                    self.children[idx].done = true;
                    let subject = SubjectRef::Op(self.children[idx].spec.id);
                    if rt.state(subject) == OpState::Open {
                        rt.set_state(subject, OpState::Closed);
                    }
                }
                ChildMsg::Error(idx, _reason) => {
                    self.children[idx].done = true;
                    self.children[idx].failed = true;
                    let subject = SubjectRef::Op(self.children[idx].spec.id);
                    // Emits the `error` event; fallback rules fire here.
                    rt.set_state(subject, OpState::Failed);
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        // Cancel all still-running children and reap threads.
        let rt = self.harness.runtime().clone();
        for c in &self.children {
            let subject = SubjectRef::Op(c.spec.id);
            if c.spawned && !c.done && rt.state(subject) == OpState::Open {
                rt.deactivate(subject);
            }
        }
        self.rx = None;
        self.tx = None;
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
        if self.opened {
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "collector"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drain;
    use crate::runtime::{ExecEnv, PlanRuntime};
    use std::sync::Arc;
    use tukwila_common::{tuple, DataType, Relation};
    use tukwila_plan::{
        Action, Condition, EventKind, EventPattern, OpId, PlanBuilder, QueryPlan, Rule,
    };
    use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

    fn rel(tag: i64, n: i64) -> Relation {
        let schema = Schema::of("bib", &[("id", DataType::Int), ("src", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i, tag]);
        }
        r
    }

    struct Fixture {
        rt: Arc<PlanRuntime>,
        plan: QueryPlan,
        child_ids: Vec<OpId>,
        coll_id: OpId,
    }

    fn fixture(
        sources: &[(&str, Relation, LinkModel, bool)],
        quota: Option<usize>,
        timeout_ms: Option<u64>,
        rules: Vec<Rule>,
    ) -> Fixture {
        let registry = SourceRegistry::new();
        for (name, rel, link, _) in sources {
            registry.register(SimulatedSource::new(*name, rel.clone(), link.clone()));
        }
        let mut b = PlanBuilder::new();
        let specs: Vec<(&str, bool)> = sources.iter().map(|(n, _, _, a)| (*n, *a)).collect();
        let (node, child_ids) = b.collector_with_timeout(&specs, quota, timeout_ms);
        let coll_id = node.id;
        let f = b.fragment(node, "out");
        let mut plan = b.build(f);
        plan.global_rules.extend(rules);
        let rt = PlanRuntime::for_plan(&plan, ExecEnv::new(registry));
        Fixture {
            rt,
            plan,
            child_ids,
            coll_id,
        }
    }

    fn collector_of(fx: &Fixture) -> Collector {
        let frag = fx.plan.fragment(tukwila_plan::FragmentId(0)).unwrap();
        let tukwila_plan::OperatorSpec::Collector {
            children,
            quota,
            child_timeout_ms,
        } = &frag.root.spec
        else {
            panic!("not a collector");
        };
        Collector::new(
            children.clone(),
            *quota,
            *child_timeout_ms,
            OpHarness::new(fx.rt.clone(), SubjectRef::Op(fx.coll_id)),
        )
    }

    #[test]
    fn unions_all_active_children() {
        let fx = fixture(
            &[
                ("s1", rel(1, 10), LinkModel::instant(), true),
                ("s2", rel(2, 5), LinkModel::instant(), true),
            ],
            None,
            None,
            vec![],
        );
        let mut c = collector_of(&fx);
        let out = drain(&mut c).unwrap();
        assert_eq!(out.len(), 15);
    }

    #[test]
    fn standby_children_not_contacted() {
        // "flexibility to contact only some of the sources"
        let fx = fixture(
            &[
                ("s1", rel(1, 10), LinkModel::instant(), true),
                ("backup", rel(2, 10), LinkModel::instant(), false),
            ],
            None,
            None,
            vec![],
        );
        let mut c = collector_of(&fx);
        let out = drain(&mut c).unwrap();
        assert_eq!(out.len(), 10, "standby child must not be contacted");
    }

    #[test]
    fn error_activates_fallback_rule() {
        // Paper example: source A fails → activate C.
        let mut fx = fixture(
            &[
                ("primary", rel(1, 100), LinkModel::failing(3), true),
                ("fallback", rel(2, 20), LinkModel::instant(), false),
            ],
            None,
            None,
            vec![],
        );
        let primary = SubjectRef::Op(fx.child_ids[0]);
        let fallback = SubjectRef::Op(fx.child_ids[1]);
        fx.plan.global_rules.push(Rule::new(
            "fallback-on-error",
            SubjectRef::Op(fx.coll_id),
            EventPattern::new(EventKind::Error, primary),
            Condition::True,
            vec![Action::Activate(fallback)],
        ));
        fx.rt = PlanRuntime::for_plan(&fx.plan, ExecEnv::new(fx.rt.env().sources.clone()));
        let mut c = collector_of(&fx);
        let out = drain(&mut c).unwrap();
        // 3 tuples from the failing primary + all 20 from the fallback
        assert_eq!(out.len(), 23);
    }

    #[test]
    fn timeout_activates_fallback_and_kills_stalled() {
        let mut fx = fixture(
            &[
                ("staller", rel(1, 100), LinkModel::stalling(5), true),
                ("backup", rel(2, 30), LinkModel::instant(), false),
            ],
            None,
            Some(30),
            vec![],
        );
        let staller = SubjectRef::Op(fx.child_ids[0]);
        let backup = SubjectRef::Op(fx.child_ids[1]);
        fx.plan.global_rules.push(Rule::new(
            "scramble",
            SubjectRef::Op(fx.coll_id),
            EventPattern::new(EventKind::Timeout, staller),
            Condition::True,
            vec![Action::Activate(backup), Action::Deactivate(staller)],
        ));
        fx.rt = PlanRuntime::for_plan(&fx.plan, ExecEnv::new(fx.rt.env().sources.clone()));
        let mut c = collector_of(&fx);
        let out = drain(&mut c).unwrap();
        // 5 from the stalled source before the stall + 30 from the backup
        assert_eq!(out.len(), 35);
    }

    #[test]
    fn paper_mirror_race_policy() {
        // The paper's example: contact A and B; whichever sends 10 tuples
        // first wins and kills the other.
        let fast = LinkModel::instant();
        let slow = LinkModel {
            per_tuple: Duration::from_millis(2),
            ..LinkModel::instant()
        };
        let mut fx = fixture(
            &[
                ("mirror-fast", rel(1, 50), fast, true),
                ("mirror-slow", rel(2, 50), slow, true),
            ],
            None,
            None,
            vec![],
        );
        let a = SubjectRef::Op(fx.child_ids[0]);
        let b = SubjectRef::Op(fx.child_ids[1]);
        let owner = SubjectRef::Op(fx.coll_id);
        fx.plan.global_rules.push(Rule::new(
            "a-wins",
            owner,
            EventPattern::with_value(EventKind::Threshold, a, 10),
            Condition::True,
            vec![Action::Deactivate(b)],
        ));
        fx.plan.global_rules.push(Rule::new(
            "b-wins",
            owner,
            EventPattern::with_value(EventKind::Threshold, b, 10),
            Condition::True,
            vec![Action::Deactivate(a)],
        ));
        fx.rt = PlanRuntime::for_plan(&fx.plan, ExecEnv::new(fx.rt.env().sources.clone()));
        let mut c = collector_of(&fx);
        let out = drain(&mut c).unwrap();
        // The fast mirror delivers all 50; the slow one contributes < 50.
        let fast_count = out
            .iter()
            .filter(|t| t.value(1) == &tukwila_common::Value::Int(1))
            .count();
        assert_eq!(fast_count, 50, "winner must deliver its full data set");
        assert!(
            out.len() < 100,
            "loser should have been killed before finishing ({} tuples)",
            out.len()
        );
    }

    #[test]
    fn quota_stops_early() {
        let fx = fixture(
            &[("s1", rel(1, 1000), LinkModel::instant(), true)],
            Some(25),
            None,
            vec![],
        );
        let mut c = collector_of(&fx);
        let out = drain(&mut c).unwrap();
        assert_eq!(out.len(), 25);
    }

    #[test]
    fn all_children_failing_is_an_error() {
        let fx = fixture(
            &[
                ("dead1", rel(1, 10), LinkModel::down(), true),
                ("dead2", rel(2, 10), LinkModel::down(), true),
            ],
            None,
            None,
            vec![],
        );
        let mut c = collector_of(&fx);
        c.open().unwrap();
        let err = match c.next_batch() {
            Ok(Some(_)) => panic!("no tuples expected"),
            Ok(None) => panic!("expected error"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), "source_unavailable");
        c.close().unwrap();
    }

    #[test]
    fn partial_failure_is_not_an_error() {
        let fx = fixture(
            &[
                ("dead", rel(1, 10), LinkModel::down(), true),
                ("alive", rel(2, 10), LinkModel::instant(), true),
            ],
            None,
            None,
            vec![],
        );
        let mut c = collector_of(&fx);
        let out = drain(&mut c).unwrap();
        assert_eq!(out.len(), 10);
    }
}
