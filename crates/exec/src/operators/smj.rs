//! Sort-merge join (baseline).
//!
//! §4.2: "sort-merge joins (except with presorted data) … cannot be
//! pipelined, since they require an initial sorting … step in this
//! context." Both inputs are drained and sorted at open; merging then
//! streams.

use std::cmp::Ordering;

use tukwila_common::{BatchAssembler, Result, Schema, TukwilaError, Tuple, TupleBatch};

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

/// Equi-join by sorting both inputs on their keys and merging.
pub struct SortMergeJoin {
    left: OperatorBox,
    right: OperatorBox,
    left_key: String,
    right_key: String,
    harness: OpHarness,
    schema: Schema,
    // sorted runs and merge state
    lrun: Vec<Tuple>,
    rrun: Vec<Tuple>,
    li: usize,
    ri: usize,
    /// Cartesian emission state within an equal-key group.
    group: Option<(usize, usize, usize, usize)>, // (lstart, lend, rstart, rend)
    gpos: (usize, usize),
    lkey: usize,
    rkey: usize,
    opened: bool,
}

impl SortMergeJoin {
    /// Build a sort-merge join.
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        left_key: String,
        right_key: String,
        harness: OpHarness,
    ) -> Self {
        SortMergeJoin {
            left,
            right,
            left_key,
            right_key,
            harness,
            schema: Schema::empty(),
            lrun: Vec::new(),
            rrun: Vec::new(),
            li: 0,
            ri: 0,
            group: None,
            gpos: (0, 0),
            lkey: 0,
            rkey: 0,
            opened: false,
        }
    }

    fn advance_group(&mut self) -> Option<()> {
        // find next pair of equal-key runs
        while self.li < self.lrun.len() && self.ri < self.rrun.len() {
            let lk = self.lrun[self.li].value(self.lkey);
            let rk = self.rrun[self.ri].value(self.rkey);
            if lk.is_null() {
                self.li += 1;
                continue;
            }
            if rk.is_null() {
                self.ri += 1;
                continue;
            }
            match lk.cmp(rk) {
                Ordering::Less => self.li += 1,
                Ordering::Greater => self.ri += 1,
                Ordering::Equal => {
                    let lstart = self.li;
                    let mut lend = self.li + 1;
                    while lend < self.lrun.len() && self.lrun[lend].value(self.lkey) == lk {
                        lend += 1;
                    }
                    let rstart = self.ri;
                    let mut rend = self.ri + 1;
                    while rend < self.rrun.len() && self.rrun[rend].value(self.rkey) == rk {
                        rend += 1;
                    }
                    self.group = Some((lstart, lend, rstart, rend));
                    self.gpos = (lstart, rstart);
                    self.li = lend;
                    self.ri = rend;
                    return Some(());
                }
            }
        }
        None
    }

    /// Next join result from the merge state, as `(lrun, rrun)` indices —
    /// the caller assembles the concatenation into its output block.
    fn next_pair(&mut self) -> Option<(usize, usize)> {
        loop {
            if let Some((_lstart, lend, rstart, rend)) = self.group {
                let (gl, gr) = self.gpos;
                if gl < lend {
                    // advance cartesian position
                    if gr + 1 < rend {
                        self.gpos = (gl, gr + 1);
                    } else {
                        self.gpos = (gl + 1, rstart);
                    }
                    return Some((gl, gr));
                }
                self.group = None;
            }
            self.advance_group()?;
        }
    }
}

impl Operator for SortMergeJoin {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.lkey = self.left.schema().index_of(&self.left_key)?;
        self.rkey = self.right.schema().index_of(&self.right_key)?;
        self.schema = self.left.schema().concat(self.right.schema());
        while let Some(batch) = self.left.next_batch()? {
            self.lrun.extend(batch);
        }
        while let Some(batch) = self.right.next_batch()? {
            self.rrun.extend(batch);
        }
        let lk = self.lkey;
        let rk = self.rkey;
        self.lrun.sort_by(|a, b| a.value(lk).cmp(b.value(lk)));
        self.rrun.sort_by(|a, b| a.value(rk).cmp(b.value(rk)));
        if let Some(r) = self.harness.reservation() {
            r.charge(
                self.lrun.iter().map(Tuple::mem_size).sum::<usize>()
                    + self.rrun.iter().map(Tuple::mem_size).sum::<usize>(),
            );
        }
        self.opened = true;
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if !self.opened {
            return Err(TukwilaError::Internal("SMJ before open".into()));
        }
        // Assemble output rows into one shared value block per batch — no
        // per-row `Vec`/`Arc` allocation in the merge loop.
        let mut asm = BatchAssembler::new(self.harness.batch_size());
        while !asm.is_full() {
            match self.next_pair() {
                Some((gl, gr)) => asm.push_concat(&self.lrun[gl], &self.rrun[gr]),
                None => break,
            }
        }
        match asm.seal() {
            None => Ok(None),
            Some(out) => {
                self.harness.produced(out.len() as u64);
                Ok(Some(out))
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()?;
        self.right.close()?;
        if self.opened {
            if let Some(r) = self.harness.reservation() {
                r.release(
                    self.lrun.iter().map(Tuple::mem_size).sum::<usize>()
                        + self.rrun.iter().map(Tuple::mem_size).sum::<usize>(),
                );
            }
            self.lrun.clear();
            self.rrun.clear();
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "sort_merge_join"
    }
}
