//! Partitioned exchange pipelines — intra-query parallelism for the
//! hash-based joins.
//!
//! The `Exchange`/`Repartition` pair splits one logical join into N
//! independent instances:
//!
//! * two **repartition drivers** (one per input) pull the real child
//!   operators and hash-partition every batch by the join key's Fx prehash
//!   (`fold_hash` with a dedicated salt, so partition routing does not
//!   correlate with the joins' internal bucket routing) into per-partition
//!   bounded channels — NULL-keyed rows are dropped at the split, exactly
//!   as the joins themselves would drop them;
//! * N **partition workers** each run a private instance of the join
//!   (double-pipelined, hybrid or Grace hash) whose children are
//!   [`PartitionSource`]s reading the partition's channels, under a
//!   partition harness: shared subject statistics and overflow method, but
//!   a memory reservation split off the plan operator's reservation via
//!   parent-chaining (so the governor's query/fleet pressure reaches every
//!   instance and the instances' combined usage is capped by the plan
//!   budget) and a scoped spill store for per-partition I/O attribution;
//! * the [`Exchange`] operator itself merges output batches in arrival
//!   order — an order-insensitive union, so the result is multiset-equal
//!   to the sequential join.
//!
//! Equi-join correctness under hash partitioning: tuples with equal keys
//! hash identically, so every matching pair meets in exactly one
//! partition and no pair meets twice.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Receiver, Sender};

use tukwila_common::{fold_hash, KeyVector, Result, Schema, TukwilaError, Tuple, TupleBatch};
use tukwila_plan::{JoinKind, QuantityProvider, SubjectRef};
use tukwila_storage::{MemoryManager, ScopedSpillStore, SpillStore};
use tukwila_trace::{OpMetrics, TraceEvent};

use crate::operator::{Operator, OperatorBox};
use crate::operators::{DoublePipelinedJoin, HashJoinOp};
use crate::runtime::OpHarness;

/// Salt for partition routing — distinct from the joins' bucket salt (0)
/// and the `PrehashMap` slot salt, so the three layers of the same prehash
/// stay uncorrelated.
pub(crate) const EXCHANGE_SALT: u64 = 0x5851_F42D_4C95_7F2D;

/// Bounded per-partition channel capacity, in batches. Large enough that a
/// hybrid join's probe side can run ahead while the build side drains,
/// small enough to bound buffered memory.
const PARTITION_QUEUE_CAP: usize = 8;

/// Whether `kind` can be parallelized by hash partitioning on the join
/// keys (delegates to the plan-level predicate shared with the
/// optimizer's lowering).
pub fn is_partitionable(kind: JoinKind) -> bool {
    kind.is_hash_partitionable()
}

enum Msg {
    Batch(TupleBatch),
    End,
    Err(TukwilaError),
}

/// Consumer end of one repartitioned stream — the leaf each partition
/// instance's join pulls from.
struct PartitionSource {
    rx: Option<Receiver<Msg>>,
    schema: Schema,
    done: bool,
}

impl PartitionSource {
    fn new(rx: Receiver<Msg>, schema: Schema) -> Self {
        PartitionSource {
            rx: Some(rx),
            schema,
            done: false,
        }
    }
}

impl Operator for PartitionSource {
    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if self.done {
            return Ok(None);
        }
        let Some(rx) = &self.rx else {
            return Ok(None);
        };
        match rx.recv() {
            Ok(Msg::Batch(b)) => Ok(Some(b)),
            Ok(Msg::End) => {
                self.done = true;
                Ok(None)
            }
            Ok(Msg::Err(e)) => {
                self.done = true;
                Err(e)
            }
            // A driver never exits without sending End or Err to every
            // partition; a bare disconnect means it died abnormally.
            Err(_) => {
                self.done = true;
                Err(TukwilaError::Internal(
                    "exchange repartition stream disconnected".into(),
                ))
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.rx = None;
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "partition_source"
    }
}

/// Repartition driver: drain `child`, split every batch across `txs` by
/// key prehash, drop NULL keys, propagate end/error to every partition.
fn drive_side(mut child: OperatorBox, key_idx: usize, txs: Vec<Sender<Msg>>) {
    let n = txs.len();
    loop {
        match child.next_batch() {
            Ok(Some(batch)) => {
                // One column-kernel hash pass routes the whole batch; the
                // partitions are carved out columnar (gather by index) when
                // the batch is, so partition streams stay typed end-to-end.
                let kv = KeyVector::compute(&batch, key_idx);
                let sent = if let Some(cols) = batch.columns() {
                    let mut idx: Vec<Vec<u32>> = vec![Vec::new(); n];
                    for (i, h) in kv.iter().enumerate() {
                        if let Some(h) = h {
                            idx[fold_hash(h, n, EXCHANGE_SALT)].push(i as u32);
                        }
                    }
                    idx.into_iter().enumerate().try_for_each(|(p, rows)| {
                        if rows.is_empty() {
                            return Ok(());
                        }
                        txs[p].send(Msg::Batch(TupleBatch::from_columns(cols.gather(&rows))))
                    })
                } else {
                    let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); n];
                    for (i, t) in batch.into_iter().enumerate() {
                        if let Some(h) = kv.get(i) {
                            parts[fold_hash(h, n, EXCHANGE_SALT)].push(t);
                        }
                    }
                    parts.into_iter().enumerate().try_for_each(|(p, tuples)| {
                        if tuples.is_empty() {
                            return Ok(());
                        }
                        txs[p].send(Msg::Batch(TupleBatch::from_tuples(tuples)))
                    })
                };
                if sent.is_err() {
                    // Consumer went away (early close): stop driving.
                    let _ = child.close();
                    return;
                }
            }
            Ok(None) => break,
            Err(e) => {
                for tx in &txs {
                    let _ = tx.send(Msg::Err(e.clone()));
                }
                let _ = child.close();
                return;
            }
        }
    }
    for tx in &txs {
        let _ = tx.send(Msg::End);
    }
    let _ = child.close();
}

struct Prep {
    left: OperatorBox,
    right: OperatorBox,
    left_key: String,
    right_key: String,
    kind: JoinKind,
}

/// The partitioned exchange operator (see module docs).
pub struct Exchange {
    prep: Option<Prep>,
    partitions: usize,
    /// Harness of the exchange plan node (merge-side statistics).
    harness: OpHarness,
    /// Plain harness of the inner join node: lifecycle + reservation
    /// parent; partition instances derive their harnesses from it.
    join_harness: OpHarness,
    /// Descendant subjects deactivated on early close so repartition
    /// drivers blocked inside link-model sleeps wake up.
    descendants: Vec<SubjectRef>,
    // -- runtime state (after open) --
    schema: Schema,
    rx: Option<Receiver<Msg>>,
    threads: Vec<JoinHandle<()>>,
    live_workers: usize,
    part_spills: Vec<Arc<ScopedSpillStore>>,
    /// Output rows per partition instance, for the skew snapshot.
    part_rows: Vec<Arc<AtomicU64>>,
    metrics: Option<Arc<OpMetrics>>,
    reported: bool,
    opened: bool,
}

impl Exchange {
    /// Build an exchange running `partitions` instances of the described
    /// join. `harness` is the exchange node's; `join_harness` the inner
    /// join node's.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        left_key: String,
        right_key: String,
        kind: JoinKind,
        partitions: usize,
        harness: OpHarness,
        join_harness: OpHarness,
    ) -> Self {
        Exchange {
            prep: Some(Prep {
                left,
                right,
                left_key,
                right_key,
                kind,
            }),
            partitions: partitions.max(1),
            harness,
            join_harness,
            descendants: Vec::new(),
            schema: Schema::empty(),
            rx: None,
            threads: Vec::new(),
            live_workers: 0,
            part_spills: Vec::new(),
            part_rows: Vec::new(),
            metrics: None,
            reported: false,
            opened: false,
        }
    }

    /// Record descendant subjects for cancellation on early close.
    pub fn with_descendants(mut self, subjects: Vec<SubjectRef>) -> Self {
        self.descendants = subjects;
        self
    }

    fn shutdown_threads(&mut self) {
        self.rx = None;
        for d in &self.descendants {
            let rt = self.harness.runtime();
            if rt.state(*d) == tukwila_plan::OpState::Open {
                rt.deactivate(*d);
            }
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }

    /// Push this run's per-partition spill counters into the runtime
    /// (once).
    fn report_partition_stats(&mut self) {
        if self.reported || self.part_spills.is_empty() {
            return;
        }
        self.reported = true;
        let spills: Vec<u64> = self
            .part_spills
            .iter()
            .map(|s| s.stats().tuples_written() as u64)
            .collect();
        let rt = self.harness.runtime();
        let op = self.join_harness.op_id().unwrap_or(u32::MAX);
        rt.note_exchange(op, &spills);
        if rt.trace().events_enabled() {
            let rows: Vec<u64> = self
                .part_rows
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            rt.trace().emit(TraceEvent::PartitionSkew { op, rows });
        }
    }
}

impl Operator for Exchange {
    fn open(&mut self) -> Result<()> {
        let Prep {
            mut left,
            mut right,
            left_key,
            right_key,
            kind,
        } = self
            .prep
            .take()
            .ok_or_else(|| TukwilaError::Internal("Exchange opened twice".into()))?;
        // Eligibility first, before any child holds resources (the
        // builder only constructs exchanges for partitionable kinds, but
        // hand-built plans reach this path too).
        if !is_partitionable(kind) {
            return Err(TukwilaError::Plan(format!(
                "exchange cannot partition a {kind:?} join"
            )));
        }
        left.open()?;
        if let Err(e) = right.open() {
            let _ = left.close();
            return Err(e);
        }
        // From here on, any failure must close both opened children.
        let (lkey, rkey) = match (
            left.schema().index_of(&left_key),
            right.schema().index_of(&right_key),
        ) {
            (Ok(l), Ok(r)) => (l, r),
            (l, r) => {
                let _ = left.close();
                let _ = right.close();
                return Err(l.err().or(r.err()).unwrap());
            }
        };
        let left_schema = left.schema().clone();
        let right_schema = right.schema().clone();
        self.schema = left_schema.concat(&right_schema);

        let n = self.partitions;
        let rt = self.harness.runtime();
        let env_spill = rt.env().spill.clone();

        // Split the join's memory reservation across the instances via
        // parent-chaining: each partition gets budget/N, every charge
        // rolls up into the plan operator's reservation (and from there
        // into the query and fleet pools), and `under_pressure` on a
        // partition sees overage at any layer.
        let parent = self.join_harness.reservation();
        let mut part_channels_l = Vec::with_capacity(n);
        let mut part_channels_r = Vec::with_capacity(n);
        let (out_tx, out_rx) = bounded::<Msg>(n.max(2) * 2);
        self.part_spills = Vec::with_capacity(n);
        self.part_rows = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        self.metrics = self.harness.metrics("exchange");
        let mut instances: Vec<OperatorBox> = Vec::with_capacity(n);
        for i in 0..n {
            let (ltx, lrx) = bounded::<Msg>(PARTITION_QUEUE_CAP);
            let (rtx, rrx) = bounded::<Msg>(PARTITION_QUEUE_CAP);
            part_channels_l.push(ltx);
            part_channels_r.push(rtx);
            let scoped = Arc::new(ScopedSpillStore::new(env_spill.clone()));
            self.part_spills.push(scoped.clone());
            let reservation = parent.as_ref().map(|p| {
                let budget = (p.budget() / n).max(1);
                MemoryManager::with_parent(p.clone()).register(format!("{}p{i}", p.name()), budget)
            });
            let part_harness = self.join_harness.for_partition(i, reservation, scoped);
            let lsrc: OperatorBox = Box::new(PartitionSource::new(lrx, left_schema.clone()));
            let rsrc: OperatorBox = Box::new(PartitionSource::new(rrx, right_schema.clone()));
            let instance: OperatorBox = match kind {
                JoinKind::DoublePipelined => Box::new(DoublePipelinedJoin::new(
                    lsrc,
                    rsrc,
                    left_key.clone(),
                    right_key.clone(),
                    part_harness,
                )),
                JoinKind::HybridHash => Box::new(HashJoinOp::hybrid(
                    lsrc,
                    rsrc,
                    left_key.clone(),
                    right_key.clone(),
                    part_harness,
                )),
                JoinKind::GraceHash => Box::new(HashJoinOp::grace(
                    lsrc,
                    rsrc,
                    left_key.clone(),
                    right_key.clone(),
                    part_harness,
                )),
                // Guarded by the is_partitionable check at open entry.
                other => unreachable!("non-partitionable {other:?} past eligibility check"),
            };
            instances.push(instance);
        }

        // Lifecycle: the exchange owns the shared join subject's state.
        self.join_harness.opened();
        self.harness.opened();
        self.opened = true;

        self.threads.push(std::thread::spawn(move || {
            drive_side(left, lkey, part_channels_l)
        }));
        self.threads.push(std::thread::spawn(move || {
            drive_side(right, rkey, part_channels_r)
        }));
        for (i, mut instance) in instances.into_iter().enumerate() {
            let out = out_tx.clone();
            let rows = self.part_rows[i].clone();
            self.threads.push(std::thread::spawn(move || {
                let result = (|| -> Result<()> {
                    instance.open()?;
                    while let Some(batch) = instance.next_batch()? {
                        rows.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        if out.send(Msg::Batch(batch)).is_err() {
                            break; // consumer gone (early close)
                        }
                    }
                    Ok(())
                })();
                let _ = instance.close();
                let _ = match result {
                    Ok(()) => out.send(Msg::End),
                    Err(e) => out.send(Msg::Err(e)),
                };
            }));
        }
        self.live_workers = n;
        self.rx = Some(out_rx);
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        loop {
            if self.live_workers == 0 {
                return Ok(None);
            }
            let Some(rx) = &self.rx else {
                return Ok(None);
            };
            let waited = self.metrics.as_ref().map(|_| Instant::now());
            let msg = rx.recv();
            if let (Some(m), Some(t0)) = (&self.metrics, waited) {
                m.add_queue_stall_ns(t0.elapsed().as_nanos() as u64);
            }
            match msg {
                Ok(Msg::Batch(b)) => {
                    if let Some(m) = &self.metrics {
                        m.add_output(b.len() as u64);
                    }
                    self.harness.produced(b.len() as u64);
                    return Ok(Some(b));
                }
                Ok(Msg::End) => {
                    self.live_workers -= 1;
                }
                Ok(Msg::Err(e)) => {
                    self.harness.failed();
                    self.shutdown_threads();
                    return Err(e);
                }
                Err(_) => {
                    return Err(TukwilaError::Internal(
                        "exchange output channel disconnected".into(),
                    ))
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.shutdown_threads();
        self.report_partition_stats();
        self.part_spills.clear();
        if self.opened {
            self.join_harness.closed();
            self.harness.closed();
            self.opened = false;
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "exchange"
    }
}
