//! Partitioned-exchange equivalence: running N parallel instances of a
//! hash join over hash-partitioned inputs must be a pure parallelization —
//! multiset-equal to the sequential join (and to the naive nested-loop
//! reference) for every partitionable join kind, NULL keys included,
//! under memory budgets small enough to force per-partition spilling, and
//! at any batch size.

use std::collections::HashMap;

use proptest::prelude::*;

use tukwila_common::{DataType, Relation, Schema, Tuple, Value};
use tukwila_plan::{JoinKind, OperatorNode, OverflowMethod, PlanBuilder, QueryPlan};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

use crate::build::build_operator;
use crate::operator::drain;
use crate::runtime::{ExecEnv, PlanRuntime};

fn multiset(tuples: &[Tuple]) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.clone()).or_insert(0) += 1;
    }
    m
}

fn rel_of(name: &str, rows: &[(Option<i64>, i64)]) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for (k, v) in rows {
        let key = match k {
            Some(k) => Value::Int(*k),
            None => Value::Null,
        };
        r.push(Tuple::new(vec![key, Value::Int(*v)]));
    }
    r
}

fn keyed_rows(n: i64, dup: i64, null_every: Option<i64>) -> Vec<(Option<i64>, i64)> {
    (0..n)
        .map(|i| {
            let k = match null_every {
                Some(e) if i % e == 0 => None,
                _ => Some(i % dup.max(1)),
            };
            (k, i)
        })
        .collect()
}

fn plan_of(build: impl FnOnce(&mut PlanBuilder) -> OperatorNode) -> QueryPlan {
    let mut b = PlanBuilder::new();
    let root = build(&mut b);
    let f = b.fragment(root, "out");
    b.build(f)
}

fn join_node(
    b: &mut PlanBuilder,
    kind: JoinKind,
    budget: Option<usize>,
) -> tukwila_plan::OperatorNode {
    let ls = b.wrapper_scan("L");
    let rs = b.wrapper_scan("R");
    let mut j = match kind {
        JoinKind::DoublePipelined => {
            b.dpj(ls, rs, "k", "k", OverflowMethod::IncrementalSymmetricFlush)
        }
        other => b.join(other, ls, rs, "k", "k"),
    };
    if let Some(bytes) = budget {
        j = j.with_memory(bytes);
    }
    j
}

/// Run a one-fragment plan against `L`/`R`; returns the drained output and
/// the runtime (for spill / parallel-stat assertions).
fn run_plan(
    l: &Relation,
    r: &Relation,
    plan: &QueryPlan,
    batch_size: usize,
) -> (Vec<Tuple>, std::sync::Arc<PlanRuntime>) {
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new("L", l.clone(), LinkModel::instant()));
    reg.register(SimulatedSource::new("R", r.clone(), LinkModel::instant()));
    let env = ExecEnv::new(reg).with_batch_size(batch_size);
    let rt = PlanRuntime::for_plan(plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    (drain(op.as_mut()).unwrap(), rt)
}

#[test]
fn exchange_matches_gold_for_every_partitionable_kind() {
    let l = rel_of("l", &keyed_rows(300, 20, Some(13)));
    let r = rel_of("r", &keyed_rows(200, 20, Some(7)));
    let gold = multiset(l.nested_join(&r, 0, 0).tuples());
    for kind in [
        JoinKind::DoublePipelined,
        JoinKind::HybridHash,
        JoinKind::GraceHash,
    ] {
        for partitions in [2usize, 3, 4] {
            let plan = plan_of(|b| {
                let j = join_node(b, kind, None);
                b.exchange(j, partitions)
            });
            let (out, _) = run_plan(&l, &r, &plan, 64);
            assert_eq!(
                multiset(&out),
                gold,
                "{kind:?} x{partitions} diverged from reference"
            );
        }
    }
}

#[test]
fn exchange_with_tiny_budget_spills_and_stays_exact() {
    let l = rel_of("l", &keyed_rows(400, 25, None));
    let r = rel_of("r", &keyed_rows(400, 25, None));
    let gold = multiset(l.nested_join(&r, 0, 0).tuples());
    for kind in [JoinKind::DoublePipelined, JoinKind::HybridHash] {
        let plan = plan_of(|b| {
            let j = join_node(b, kind, Some(3_000));
            b.exchange(j, 4)
        });
        let (out, rt) = run_plan(&l, &r, &plan, 64);
        assert_eq!(multiset(&out), gold, "{kind:?} under spill diverged");
        assert!(
            rt.env().spill.stats().tuples_written() > 0,
            "{kind:?}: a 3KB budget over ~400-tuple sides must spill"
        );
        // Per-partition attribution reached the runtime, labeled with the
        // join operator's id.
        let ps = rt.parallel_stats();
        assert_eq!(ps.max_partitions, 4);
        assert_eq!(ps.partition_spills.len(), 1, "one exchange instance ran");
        let entry = &ps.partition_spills[0];
        assert_ne!(entry.op, u32::MAX, "spill entry must carry the join op id");
        assert_eq!(entry.tuples.len(), 4);
        assert!(
            entry.total() > 0,
            "{kind:?}: spill must be attributed to partitions"
        );
    }
}

#[test]
fn exchange_over_nlj_is_a_passthrough() {
    // Nested loops is not hash-partitionable; the exchange wrapper must
    // degrade to running the join unchanged.
    let l = rel_of("l", &keyed_rows(50, 5, Some(9)));
    let r = rel_of("r", &keyed_rows(40, 5, None));
    let gold = multiset(l.nested_join(&r, 0, 0).tuples());
    let plan = plan_of(|b| {
        let j = join_node(b, JoinKind::NestedLoops, None);
        b.exchange(j, 4)
    });
    let (out, rt) = run_plan(&l, &r, &plan, 32);
    assert_eq!(multiset(&out), gold);
    assert_eq!(rt.parallel_stats().max_partitions, 0, "no exchange ran");
}

#[test]
fn exchange_with_one_partition_is_a_passthrough() {
    let l = rel_of("l", &keyed_rows(60, 6, None));
    let r = rel_of("r", &keyed_rows(60, 6, None));
    let gold = multiset(l.nested_join(&r, 0, 0).tuples());
    let plan = plan_of(|b| {
        let j = join_node(b, JoinKind::DoublePipelined, None);
        b.exchange(j, 1)
    });
    let (out, _) = run_plan(&l, &r, &plan, 64);
    assert_eq!(multiset(&out), gold);
}

#[test]
fn exchange_empty_inputs_produce_nothing() {
    let l = rel_of("l", &[]);
    let r = rel_of("r", &keyed_rows(20, 2, None));
    let plan = plan_of(|b| {
        let j = join_node(b, JoinKind::HybridHash, None);
        b.exchange(j, 3)
    });
    let (out, _) = run_plan(&l, &r, &plan, 64);
    assert!(out.is_empty());
}

#[test]
fn exchange_propagates_source_failure() {
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new(
        "L",
        rel_of("l", &keyed_rows(100, 10, None)),
        LinkModel::failing(5),
    ));
    reg.register(SimulatedSource::new(
        "R",
        rel_of("r", &keyed_rows(100, 10, None)),
        LinkModel::instant(),
    ));
    let plan = plan_of(|b| {
        let j = join_node(b, JoinKind::DoublePipelined, None);
        b.exchange(j, 4)
    });
    let env = ExecEnv::new(reg);
    let rt = PlanRuntime::for_plan(&plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    op.open().unwrap();
    let err = loop {
        match op.next_batch() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("expected source failure to surface"),
            Err(e) => break e,
        }
    };
    assert_eq!(err.kind(), "source_unavailable");
    op.close().unwrap();
}

#[test]
fn exchange_close_without_drain_does_not_hang() {
    use std::time::{Duration, Instant};
    let slow = LinkModel {
        per_tuple: Duration::from_millis(2),
        ..LinkModel::instant()
    };
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new(
        "L",
        rel_of("l", &keyed_rows(10_000, 10, None)),
        slow.clone(),
    ));
    reg.register(SimulatedSource::new(
        "R",
        rel_of("r", &keyed_rows(10_000, 10, None)),
        slow,
    ));
    let plan = plan_of(|b| {
        let j = join_node(b, JoinKind::DoublePipelined, None);
        b.exchange(j, 4)
    });
    let env = ExecEnv::new(reg);
    let rt = PlanRuntime::for_plan(&plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    op.open().unwrap();
    let _ = op.next_batch().unwrap();
    let start = Instant::now();
    op.close().unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "close must cancel blocked repartition drivers"
    );
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(Option<i64>, i64)>> {
    proptest::collection::vec(
        (
            prop_oneof![3 => (0i64..6).prop_map(Some), 1 => Just(None)],
            0i64..1000,
        ),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Exchange-parallelized execution is multiset-equal to the
    /// sequential join for every partitionable kind — random inputs with
    /// NULL keys, random partition degree, overflow-forcing budgets, and
    /// varying batch sizes.
    #[test]
    fn prop_exchange_matches_sequential(
        l_rows in arb_rows(40),
        r_rows in arb_rows(40),
        partitions in 2usize..5,
        budget in prop_oneof![Just(None), Just(Some(1_500usize))],
        batch_size in prop_oneof![Just(1usize), Just(7), Just(64)],
    ) {
        let l = rel_of("l", &l_rows);
        let r = rel_of("r", &r_rows);
        for kind in [JoinKind::DoublePipelined, JoinKind::HybridHash, JoinKind::GraceHash] {
            let sequential = plan_of(|b| join_node(b, kind, budget));
            let (seq_out, _) = run_plan(&l, &r, &sequential, batch_size);
            let parallel = plan_of(|b| {
                let j = join_node(b, kind, budget);
                b.exchange(j, partitions)
            });
            let (par_out, _) = run_plan(&l, &r, &parallel, batch_size);
            prop_assert!(
                multiset(&par_out) == multiset(&seq_out),
                "{kind:?} x{partitions} (budget {budget:?}, batch {batch_size}): parallel {} rows vs sequential {}",
                par_out.len(),
                seq_out.len()
            );
        }
    }
}
