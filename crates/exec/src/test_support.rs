//! Shared helpers for exec-crate unit tests.

use std::sync::Arc;

use tukwila_common::{tuple, DataType, Relation, Schema};
use tukwila_plan::{JoinKind, OpId, OverflowMethod, PlanBuilder, QueryPlan, SubjectRef};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

use crate::operators::WrapperScan;
use crate::runtime::{ExecEnv, OpHarness, PlanRuntime};

/// `n` tuples `(i % dup, i)` under schema `name(k, v)`.
pub fn keyed_relation(name: &str, n: i64, dup: i64) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for i in 0..n {
        r.push(tuple![i % dup.max(1), i]);
    }
    r
}

/// A two-source join fixture: registers `L`/`R`, builds a one-fragment plan
/// with a join of `kind`, returns the runtime plus the scan/join ids.
pub struct JoinFixture {
    pub rt: Arc<PlanRuntime>,
    pub plan: QueryPlan,
    pub left_id: OpId,
    pub right_id: OpId,
    pub join_id: OpId,
    pub gold: Relation,
}

impl JoinFixture {
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        l: Relation,
        r: Relation,
        l_link: LinkModel,
        r_link: LinkModel,
        kind: JoinKind,
        overflow: OverflowMethod,
        budget: Option<usize>,
    ) -> Self {
        let gold = l.nested_join(&r, 0, 0);
        let registry = SourceRegistry::new();
        registry.register(SimulatedSource::new("L", l, l_link));
        registry.register(SimulatedSource::new("R", r, r_link));

        let mut b = PlanBuilder::new();
        let ls = b.wrapper_scan("L");
        let rs = b.wrapper_scan("R");
        let (left_id, right_id) = (ls.id, rs.id);
        let mut j = match kind {
            JoinKind::DoublePipelined => b.dpj(ls, rs, "k", "k", overflow),
            other => b.join(other, ls, rs, "k", "k"),
        };
        if let Some(bytes) = budget {
            j = j.with_memory(bytes);
        }
        let join_id = j.id;
        let f = b.fragment(j, "out");
        let plan = b.build(f);
        let rt = PlanRuntime::for_plan(&plan, ExecEnv::new(registry));
        JoinFixture {
            rt,
            plan,
            left_id,
            right_id,
            join_id,
            gold,
        }
    }

    /// Rebuild the runtime with a different operator batch size (1 =
    /// tuple-at-a-time), keeping plan and sources.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        let env = ExecEnv::new(self.rt.env().sources.clone()).with_batch_size(n);
        self.rt = PlanRuntime::for_plan(&self.plan, env);
        self
    }

    pub fn harness(&self, id: OpId) -> OpHarness {
        OpHarness::new(self.rt.clone(), SubjectRef::Op(id))
    }

    pub fn left_scan(&self) -> Box<WrapperScan> {
        Box::new(WrapperScan::new(
            "L".into(),
            None,
            None,
            self.harness(self.left_id),
        ))
    }

    pub fn right_scan(&self) -> Box<WrapperScan> {
        Box::new(WrapperScan::new(
            "R".into(),
            None,
            None,
            self.harness(self.right_id),
        ))
    }

    /// Assert a join result equals the gold standard as a bag.
    pub fn assert_gold(&self, out: Vec<tukwila_common::Tuple>) {
        let got = Relation::new(self.gold.schema().clone(), out).unwrap();
        assert!(
            got.bag_eq(&self.gold),
            "result mismatch: got {} tuples, want {}",
            got.len(),
            self.gold.len()
        );
    }
}
