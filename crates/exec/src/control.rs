//! Per-query cooperative cancellation and wall-clock deadlines.
//!
//! A [`QueryControl`] is created when a query is submitted and threaded
//! through the whole run: the fragment loop checks it at every batch
//! boundary, and every blocking source stream registers its cancel handle
//! with it so `cancel()` interrupts even a scan sleeping inside a link
//! model. Deadlines are *self-tripping*: any check after the deadline
//! passes flips the control into the cancelled state (kind
//! [`CancelKind::Deadline`]) and fires the registered handles — the
//! service's watchdog merely guarantees a check happens while every worker
//! thread is blocked on a slow source.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use tukwila_common::{Result, TukwilaError};
use tukwila_trace::{QueryTrace, TraceLevel};

/// Why a query was cancelled — distinct from rule-driven aborts
/// (`TukwilaError::Cancelled` raised by a `return error to user` action).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelKind {
    /// The client (or the service on its behalf) cancelled the query.
    User,
    /// The wall-clock deadline given at submission passed.
    Deadline,
    /// The service is shutting down.
    Shutdown,
}

const STATE_LIVE: u8 = 0;
const STATE_USER: u8 = 1;
const STATE_DEADLINE: u8 = 2;
const STATE_SHUTDOWN: u8 = 3;

fn encode(kind: CancelKind) -> u8 {
    match kind {
        CancelKind::User => STATE_USER,
        CancelKind::Deadline => STATE_DEADLINE,
        CancelKind::Shutdown => STATE_SHUTDOWN,
    }
}

fn decode(state: u8) -> Option<CancelKind> {
    match state {
        STATE_USER => Some(CancelKind::User),
        STATE_DEADLINE => Some(CancelKind::Deadline),
        STATE_SHUTDOWN => Some(CancelKind::Shutdown),
        _ => None,
    }
}

/// Process-unique flight ids (never reused, unlike addresses).
static NEXT_FLIGHT: AtomicU64 = AtomicU64::new(1);

/// Shared cancellation/deadline state for one query run.
#[derive(Debug)]
pub struct QueryControl {
    state: AtomicU8,
    started: Instant,
    deadline: Option<Instant>,
    /// Process-unique id for this query — the *flight* its scans share in
    /// the source-result cache's single-flight protocol.
    flight: u64,
    /// Cancel flags of blocking streams opened by this query; flipped on
    /// cancellation so sleeps inside link models end promptly.
    handles: Mutex<Vec<Arc<AtomicBool>>>,
    /// The query's execution trace. Created with the control so every
    /// layer the control already reaches (admission, scheduler, rule
    /// engine, operators, source cache) can emit without new plumbing.
    trace: Arc<QueryTrace>,
}

impl QueryControl {
    /// A control with no deadline (cancellable only).
    pub fn unbounded() -> Arc<Self> {
        Self::unbounded_traced(TraceLevel::default())
    }

    /// [`QueryControl::unbounded`] recording at an explicit trace level.
    pub fn unbounded_traced(level: TraceLevel) -> Arc<Self> {
        Arc::new(QueryControl {
            state: AtomicU8::new(STATE_LIVE),
            started: Instant::now(),
            deadline: None,
            flight: NEXT_FLIGHT.fetch_add(1, Ordering::Relaxed),
            handles: Mutex::new(Vec::new()),
            trace: QueryTrace::new(level),
        })
    }

    /// This query's flight id (see the source-result cache).
    pub fn flight_id(&self) -> u64 {
        self.flight
    }

    /// This query's execution trace.
    pub fn trace(&self) -> &Arc<QueryTrace> {
        &self.trace
    }

    /// A control whose query must finish within `budget` of *now*. The
    /// process-wide deadline enforcer cancels the control at the deadline
    /// even while the query's thread is blocked inside a source's link
    /// model — cancellation fires every registered stream cancel handle
    /// and interrupts the sleep. (Checks at batch boundaries trip the
    /// deadline too; the enforcer covers the blocked case.)
    pub fn with_deadline(budget: Duration) -> Arc<Self> {
        Self::with_deadline_traced(budget, TraceLevel::default())
    }

    /// [`QueryControl::with_deadline`] recording at an explicit trace
    /// level.
    pub fn with_deadline_traced(budget: Duration, level: TraceLevel) -> Arc<Self> {
        let now = Instant::now();
        let deadline = now + budget;
        let control = Arc::new(QueryControl {
            state: AtomicU8::new(STATE_LIVE),
            started: now,
            deadline: Some(deadline),
            flight: NEXT_FLIGHT.fetch_add(1, Ordering::Relaxed),
            handles: Mutex::new(Vec::new()),
            trace: QueryTrace::new(level),
        });
        enforcer::watch(deadline, Arc::downgrade(&control));
        control
    }

    /// When the control was created (query submission time).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Cancel the query. The first cancellation wins; later calls (and the
    /// deadline) cannot overwrite its kind. All registered stream handles
    /// are flipped so blocked pulls return promptly.
    pub fn cancel(&self, kind: CancelKind) {
        if self
            .state
            .compare_exchange(
                STATE_LIVE,
                encode(kind),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.fire_handles();
        }
    }

    /// Register a stream's cancel flag; flipped immediately if the control
    /// is already cancelled (a stream opened after the deadline tripped
    /// must not block). Push-then-check: a cancellation racing this call
    /// either sees the handle in the list (fired by `cancel`) or is seen
    /// by the post-push check — either way the flag flips.
    pub fn register_handle(&self, handle: Arc<AtomicBool>) {
        self.handles.lock().push(handle.clone());
        if self.cancelled().is_some() {
            handle.store(true, Ordering::Relaxed);
        }
    }

    fn fire_handles(&self) {
        for h in self.handles.lock().iter() {
            h.store(true, Ordering::Relaxed);
        }
    }

    /// Current cancellation state. Checking *trips* an elapsed deadline:
    /// the state flips to [`CancelKind::Deadline`] and the handles fire.
    pub fn cancelled(&self) -> Option<CancelKind> {
        if let Some(kind) = decode(self.state.load(Ordering::Relaxed)) {
            return Some(kind);
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d
                && self
                    .state
                    .compare_exchange(
                        STATE_LIVE,
                        STATE_DEADLINE,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                self.fire_handles();
            }
            return decode(self.state.load(Ordering::Relaxed));
        }
        None
    }

    /// [`QueryControl::cancelled`] as a `Result`, with the error the engine
    /// reports: `DeadlineExceeded` for a tripped deadline, `Cancelled` for
    /// an explicit cancellation.
    pub fn check(&self) -> Result<()> {
        match self.cancelled() {
            None => Ok(()),
            Some(CancelKind::Deadline) => Err(TukwilaError::DeadlineExceeded {
                elapsed_ms: self.started.elapsed().as_millis() as u64,
            }),
            Some(CancelKind::User) => Err(TukwilaError::Cancelled("cancelled by client".into())),
            Some(CancelKind::Shutdown) => {
                Err(TukwilaError::Cancelled("service shutting down".into()))
            }
        }
    }
}

/// The process-wide deadline enforcer: one lazily spawned thread holding a
/// min-heap of `(deadline, control)` entries. Scales to any number of
/// in-flight deadline-bearing queries without a thread each; a finished
/// query's entry expires harmlessly (the weak upgrade fails, or the cancel
/// no-ops because the first cancellation won).
mod enforcer {
    use super::{CancelKind, QueryControl};
    use std::cmp::Ordering as CmpOrdering;
    use std::collections::BinaryHeap;
    use std::sync::{Condvar, Mutex, OnceLock, Weak};
    use std::time::Instant;

    struct Entry {
        at: Instant,
        seq: u64,
        control: Weak<QueryControl>,
    }

    // Inverted ordering: BinaryHeap is a max-heap, we want earliest first.
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> CmpOrdering {
            other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
            Some(self.cmp(other))
        }
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.at == other.at && self.seq == other.seq
        }
    }
    impl Eq for Entry {}

    struct Enforcer {
        heap: Mutex<(BinaryHeap<Entry>, u64)>,
        cv: Condvar,
    }

    fn instance() -> &'static Enforcer {
        static INSTANCE: OnceLock<Enforcer> = OnceLock::new();
        INSTANCE.get_or_init(|| {
            std::thread::spawn(run);
            Enforcer {
                heap: Mutex::new((BinaryHeap::new(), 0)),
                cv: Condvar::new(),
            }
        })
    }

    /// Register `control` for cancellation at `at`.
    pub(super) fn watch(at: Instant, control: Weak<QueryControl>) {
        let e = instance();
        let mut guard = e.heap.lock().unwrap();
        let seq = guard.1;
        guard.1 += 1;
        guard.0.push(Entry { at, seq, control });
        drop(guard);
        e.cv.notify_one();
    }

    fn run() {
        let e = instance();
        let mut guard = e.heap.lock().unwrap();
        loop {
            let now = Instant::now();
            match guard.0.peek() {
                None => {
                    guard = e.cv.wait(guard).unwrap();
                }
                Some(entry) if entry.at <= now => {
                    let entry = guard.0.pop().unwrap();
                    drop(guard); // cancel outside the heap lock
                    if let Some(control) = entry.control.upgrade() {
                        control.cancel(CancelKind::Deadline);
                    }
                    guard = e.heap.lock().unwrap();
                }
                Some(entry) => {
                    let wait = entry.at - now;
                    guard = e.cv.wait_timeout(guard, wait).unwrap().0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_trips() {
        let c = QueryControl::unbounded();
        assert_eq!(c.cancelled(), None);
        assert!(c.check().is_ok());
    }

    #[test]
    fn explicit_cancel_flips_registered_handles() {
        let c = QueryControl::unbounded();
        let h = Arc::new(AtomicBool::new(false));
        c.register_handle(h.clone());
        c.cancel(CancelKind::User);
        assert!(h.load(Ordering::Relaxed));
        assert_eq!(c.cancelled(), Some(CancelKind::User));
        assert_eq!(c.check().unwrap_err().kind(), "cancelled");
    }

    #[test]
    fn deadline_self_trips_and_fires_handles() {
        let c = QueryControl::with_deadline(Duration::from_millis(5));
        let h = Arc::new(AtomicBool::new(false));
        c.register_handle(h.clone());
        assert_eq!(c.cancelled(), None);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(c.cancelled(), Some(CancelKind::Deadline));
        assert!(h.load(Ordering::Relaxed));
        assert_eq!(c.check().unwrap_err().kind(), "deadline_exceeded");
    }

    #[test]
    fn enforcer_fires_handles_without_any_check() {
        // No thread ever calls cancelled()/check(): the process-wide
        // enforcer alone must flip the handles (the blocked-worker case).
        let c = QueryControl::with_deadline(Duration::from_millis(20));
        let h = Arc::new(AtomicBool::new(false));
        c.register_handle(h.clone());
        let deadline = Instant::now() + Duration::from_secs(5);
        while !h.load(Ordering::Relaxed) {
            assert!(Instant::now() < deadline, "enforcer never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Several controls at once: each fires independently.
        let c2 = QueryControl::with_deadline(Duration::from_millis(10));
        let c3 = QueryControl::with_deadline(Duration::from_millis(30));
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(c2.cancelled(), Some(CancelKind::Deadline));
        assert_eq!(c3.cancelled(), Some(CancelKind::Deadline));
        drop(c);
    }

    #[test]
    fn first_cancellation_wins() {
        let c = QueryControl::with_deadline(Duration::from_millis(2));
        c.cancel(CancelKind::User);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(c.cancelled(), Some(CancelKind::User));
    }

    #[test]
    fn late_registration_fires_immediately() {
        let c = QueryControl::unbounded();
        c.cancel(CancelKind::Shutdown);
        let h = Arc::new(AtomicBool::new(false));
        c.register_handle(h.clone());
        assert!(h.load(Ordering::Relaxed));
    }
}
