//! Offline shim for `serde`.
//!
//! The workspace only uses serde through `#[derive(Serialize, Deserialize)]`
//! annotations on plain data types — nothing actually serializes at runtime
//! (the derives exist so downstream tools can round-trip plans and stats
//! once the real dependency is available). With no crates.io access, this
//! proc-macro crate supplies derive macros of the same names that expand to
//! nothing, keeping every annotated type compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
