//! Offline shim for `rand` 0.8.
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace uses: `rngs::StdRng` (a deterministic
//! xoshiro256++ generator seeded through SplitMix64), `SeedableRng::
//! seed_from_u64`, and the `Rng` extension methods `gen_range` (half-open
//! and inclusive integer ranges plus half-open `f64` ranges) and
//! `gen_bool`. Streams are deterministic per seed, which is all the
//! workspace relies on — it never assumes bit-compatibility with the real
//! `rand` crate's `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed. Only `seed_from_u64` is used in-tree.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce one sample from an RNG.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Rounding in the scale-and-shift can land exactly on `end`; clamp
        // to preserve the half-open contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real rand crate does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
            let w = rng.gen_range(1..=7usize);
            assert!((1..=7).contains(&w));
            let f = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
