//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the `parking_lot` API the workspace uses: `Mutex` and
//! `RwLock` whose lock methods return guards directly (no poisoning —
//! a poisoned std lock is recovered transparently, matching parking_lot's
//! semantics of never poisoning).

use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

// parking_lot names its guard type; callers holding a guard in a binding or
// returning one from a function need the path.
pub use std::sync::MutexGuard;

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
