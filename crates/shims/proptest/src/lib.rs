//! Offline shim for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with a `#![proptest_config(...)]` header, range strategies over
//! integers and floats (`100usize..700`, `0.2f64..1.2`), `any::<T>()`,
//! `proptest::collection::vec`, string-pattern strategies, and
//! `prop_assert!`/`prop_assert_eq!`. Random values come from the in-tree
//! `rand` shim (as real proptest builds on rand), seeded deterministically
//! from the case index, so failures reproduce exactly on re-run (no
//! shrinking — the failing inputs are printed instead).

use std::fmt;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

pub type TestCaseResult = Result<(), TestCaseError>;

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case generator wrapping the rand shim's `StdRng`.
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    pub fn for_case(case: u32) -> Self {
        Gen {
            rng: StdRng::seed_from_u64(0x7507_7E57_u64 ^ ((case as u64) << 17)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// A value source for one macro argument.
pub trait Strategy {
    type Value: fmt::Debug + Clone;
    fn sample(&self, gen: &mut Gen) -> Self::Value;

    /// Map sampled values through `f` (the real crate's `prop_map`).
    fn prop_map<U: fmt::Debug + Clone, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the given value (the real crate's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: fmt::Debug + Clone>(pub T);

impl<T: fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _gen: &mut Gen) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug + Clone, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, gen: &mut Gen) -> U {
        (self.f)(self.inner.sample(gen))
    }
}

/// Box a strategy for heterogeneous arm lists ([`prop_oneof!`] support).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<V: fmt::Debug + Clone> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, gen: &mut Gen) -> V {
        (**self).sample(gen)
    }
}

/// Weighted union of strategies (the real crate's `prop_oneof!` backing).
pub struct OneOf<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
}

impl<V: fmt::Debug + Clone> OneOf<V> {
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().any(|(w, _)| *w > 0), "all arm weights zero");
        OneOf { arms }
    }
}

impl<V: fmt::Debug + Clone> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, gen: &mut Gen) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut roll = gen.next_u64() % total;
        for (w, s) in &self.arms {
            if roll < *w as u64 {
                return s.sample(gen);
            }
            roll -= *w as u64;
        }
        unreachable!("weighted roll exceeded total")
    }
}

/// Weighted (`w => strat`) or uniform choice among strategies yielding the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(($weight as u32, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, gen: &mut Gen) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(gen),)+)
            }
        }
    )+};
}

impl_tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F) }

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, gen: &mut Gen) -> $t {
                gen.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

/// Marker for `any::<T>()` support.
pub trait Arbitrary: fmt::Debug + Clone {
    fn arbitrary(gen: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(gen: &mut Gen) -> $t {
                gen.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(gen: &mut Gen) -> bool {
        gen.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(gen: &mut Gen) -> f64 {
        gen.rng.gen_range(-1e6..1e6)
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, gen: &mut Gen) -> T {
        T::arbitrary(gen)
    }
}

/// Multi-byte printable characters mixed into string samples so UTF-8
/// handling (byte length vs char count) is actually exercised.
const WIDE_CHARS: [char; 8] = ['é', 'ß', 'λ', 'Ω', 'ñ', '中', '…', '🦀'];

/// String-pattern strategies. The real proptest interprets the pattern as a
/// regex; this shim honors only a trailing `{lo,hi}` repetition count (as in
/// `"\\PC{0,24}"`) and draws printable strings of a length in that range —
/// mostly ASCII with roughly one in eight chars multi-byte — sufficient for
/// the codec round-trip properties in this tree.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, gen: &mut Gen) -> String {
        let (lo, hi) = parse_repeat_bounds(self).unwrap_or((0, 8));
        let len = if hi > lo {
            gen.rng.gen_range(lo..=hi)
        } else {
            lo
        };
        (0..len)
            .map(|_| {
                let roll = gen.next_u64();
                if roll.is_multiple_of(8) {
                    WIDE_CHARS[(roll >> 8) as usize % WIDE_CHARS.len()]
                } else {
                    (0x20 + ((roll >> 8) % 0x5f) as u8) as char
                }
            })
            .collect()
    }
}

fn parse_repeat_bounds(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let open = body.rfind('{')?;
    let (lo, hi) = body[open + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

pub mod collection {
    use super::{Gen, Strategy};

    /// `proptest::collection::vec(element, size_range)` — a Vec whose
    /// length is drawn from `size` and whose elements from `element`.
    pub fn vec<E: Strategy>(element: E, size: std::ops::Range<usize>) -> VecStrategy<E> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<E> {
        element: E,
        size: std::ops::Range<usize>,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;
        fn sample(&self, gen: &mut Gen) -> Vec<E::Value> {
            let len = Strategy::sample(&self.size, gen);
            (0..len).map(|_| self.element.sample(gen)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Gen, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut gen = $crate::Gen::for_case(case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut gen); )*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)*),
                        $($arg.clone()),*
                    );
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest case {} failed ({}): {}",
                            case, inputs, e.0
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn int_ranges_in_bounds(n in 10usize..20, x in -5i64..5) {
            prop_assert!((10..20).contains(&n));
            prop_assert!((-5..5).contains(&x));
        }

        #[test]
        fn float_ranges_in_bounds(f in 0.25f64..0.75) {
            prop_assert!((0.25..0.75).contains(&f), "f = {}", f);
            prop_assert_eq!(f.is_nan(), false);
        }

        #[test]
        fn string_pattern_lengths(s in "\\PC{0,24}") {
            prop_assert!(s.chars().count() <= 24);
        }

        #[test]
        fn oneof_just_map_and_tuples(
            v in prop_oneof![3 => (0i64..5).prop_map(Some), 1 => Just(None)],
            pair in ((0i64..3), (10i64..13)),
        ) {
            prop_assert!(v.is_none() || (0..5).contains(&v.unwrap()));
            prop_assert!((0..3).contains(&pair.0) && (10..13).contains(&pair.1));
        }
    }

    #[test]
    fn strings_eventually_contain_multibyte() {
        let found = (0..64).any(|case| {
            let mut gen = Gen::for_case(case);
            let s: String = Strategy::sample(&"\\PC{0,24}", &mut gen);
            s.chars().any(|c| c.len_utf8() > 1)
        });
        assert!(found, "no multi-byte char in 64 cases");
    }
}
