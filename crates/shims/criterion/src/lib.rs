//! Offline shim for `criterion`.
//!
//! Provides the API subset the workspace's benches use — `Criterion::
//! benchmark_group`, `BenchmarkGroup::{sample_size, bench_function,
//! bench_with_input, finish}`, `Bencher::iter`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical engine.
//! Each benchmark runs `sample_size` iterations (after one warm-up) and
//! prints mean time per iteration, so `cargo bench` produces comparable
//! relative numbers without any external dependency.

use std::fmt;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Top-level (ungrouped) benchmark, reported under the "top" group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("top").bench_function(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: self.sample_size as u64,
            elapsed_ns: 0,
            measured_iters: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.measured_iters > 0 {
            bencher.elapsed_ns / bencher.measured_iters as u128
        } else {
            0
        };
        println!(
            "bench {}/{}: {} iters, mean {}",
            self.name,
            id,
            bencher.measured_iters,
            format_ns(mean_ns)
        );
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{} ns", ns)
    }
}

pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
    measured_iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration, then the measured loop.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
        self.measured_iters += self.iters;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
