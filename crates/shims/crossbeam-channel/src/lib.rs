//! Offline shim for `crossbeam-channel`.
//!
//! Implements the subset the workspace uses: `bounded` MPMC channels with
//! cloneable `Sender`/`Receiver` halves, blocking/timed/non-blocking
//! receives, and an event-driven `Select` over receive operations. Backed
//! by a `Mutex<VecDeque>` + two `Condvar`s; `Select::select` registers a
//! waker with every involved channel and blocks until one signals
//! readiness — the double pipelined join sits in `select` on its transfer
//! queues on the engine's hottest path, so a polling implementation (the
//! original shim slept 1 ms between readiness sweeps) throttles every join
//! in the tree.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has been dropped.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has been dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

/// Wakes a blocked `Select`: a flag + condvar pair registered (weakly) with
/// every channel the selector watches. Channels signal it on any event that
/// can change receive readiness (message enqueued, last sender dropped).
struct SelectWaker {
    signalled: Mutex<bool>,
    cv: Condvar,
}

impl SelectWaker {
    fn new() -> Self {
        SelectWaker {
            signalled: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn signal(&self) {
        let mut s = self.signalled.lock().unwrap_or_else(|e| e.into_inner());
        *s = true;
        self.cv.notify_all();
    }

    /// Block until signalled (consuming the signal). A bounded wait guards
    /// against any lost-wakeup path; correctness never depends on it.
    fn wait(&self) {
        let mut s = self.signalled.lock().unwrap_or_else(|e| e.into_inner());
        if !*s {
            let (guard, _) = self
                .cv
                .wait_timeout(s, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
        }
        *s = false;
    }
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    /// Wakers of `Select`s currently blocked on this channel. Almost always
    /// empty; dead entries are swept on each signal pass.
    select_wakers: Mutex<Vec<std::sync::Weak<SelectWaker>>>,
}

impl<T> Shared<T> {
    fn no_senders(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn no_receivers(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }

    /// Signal every live registered selector that readiness may have
    /// changed.
    fn wake_selects(&self) {
        let mut wakers = self.select_wakers.lock().unwrap_or_else(|e| e.into_inner());
        if wakers.is_empty() {
            return;
        }
        wakers.retain(|w| match w.upgrade() {
            Some(w) => {
                w.signal();
                true
            }
            None => false,
        });
    }

    fn register_select(&self, waker: &Arc<SelectWaker>) {
        let mut wakers = self.select_wakers.lock().unwrap_or_else(|e| e.into_inner());
        // Dead entries are normally swept by `wake_selects`, but a channel
        // that never sends (stalled source) would otherwise accumulate one
        // dead Weak per select that returned via its sibling — sweep here
        // too once the list is non-trivial.
        if wakers.len() >= 8 {
            wakers.retain(|w| w.strong_count() > 0);
        }
        wakers.push(Arc::downgrade(waker));
    }
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel. A capacity of 0 (rendezvous in the real crate)
/// is rounded up to 1; no in-tree call site uses 0.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cap: cap.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        select_wakers: Mutex::new(Vec::new()),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Block until there is room (or no receivers remain).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if shared.no_receivers() {
                return Err(SendError(value));
            }
            if queue.len() < shared.cap {
                queue.push_back(value);
                shared.not_empty.notify_one();
                drop(queue);
                shared.wake_selects();
                return Ok(());
            }
            // Time-boxed wait so a receiver-side disconnect is observed even
            // if the final receiver drops without notifying.
            let (q, _timeout) = shared
                .not_full
                .wait_timeout(queue, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_empty.notify_all();
            // Disconnection makes receives ready (with RecvError).
            self.shared.wake_selects();
        }
    }
}

impl<T> Receiver<T> {
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.no_senders() {
                return Err(RecvError);
            }
            let (q, _timeout) = shared
                .not_empty
                .wait_timeout(queue, Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = queue.pop_front() {
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.no_senders() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let wait = (deadline - now).min(Duration::from_millis(10));
            let (q, _timeout) = shared
                .not_empty
                .wait_timeout(queue, wait)
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = queue.pop_front() {
            shared.not_full.notify_one();
            return Ok(v);
        }
        if shared.no_senders() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    fn ready(&self) -> bool {
        let queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        !queue.is_empty() || self.shared.no_senders()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_full.notify_all();
        }
    }
}

/// Type-erased waker registrar for one channel.
type Registrar<'a> = Box<dyn Fn(&Arc<SelectWaker>) + 'a>;

/// Operation registered with a [`Select`]: a readiness probe plus a waker
/// registrar (both type-erased over the receiver's element type).
struct SelectOp<'a> {
    ready: Box<dyn Fn() -> bool + 'a>,
    register: Registrar<'a>,
}

/// An event-driven select over receive operations: blocked selectors
/// register a waker with every involved channel and sleep on a condvar
/// until a send (or sender disconnect) signals readiness — no polling on
/// the hot path. Ties are broken round-robin (the real crate picks
/// uniformly at random among ready operations) so no input is
/// systematically starved when several are ready at once.
///
/// Restriction vs the real crate: readiness is not atomic with consumption
/// (`SelectedOperation::recv` performs an ordinary blocking `recv`), so a
/// receiver polled through `Select` must not be shared with another
/// consumer — a clone draining the same channel between poll and recv
/// would leave the selector blocked on a message that is no longer there.
/// Every in-tree `Select` call site is single-consumer.
pub struct Select<'a> {
    ops: Vec<SelectOp<'a>>,
}

/// Tie-break rotation shared across `Select` instances: callers (e.g. the
/// DPJ's receive loop) construct a fresh `Select` per call, so per-instance
/// state could not rotate.
static SELECT_ROTATION: AtomicUsize = AtomicUsize::new(0);

impl<'a> Select<'a> {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Select { ops: Vec::new() }
    }

    /// Register a receive operation; returns its operation index.
    pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
        let shared = Arc::clone(&r.shared);
        self.ops.push(SelectOp {
            ready: Box::new(move || r.ready()),
            register: Box::new(move |w| shared.register_select(w)),
        });
        self.ops.len() - 1
    }

    /// One readiness sweep with rotated tie-breaking.
    fn poll(&self) -> Option<usize> {
        let n = self.ops.len();
        let rotation = SELECT_ROTATION.fetch_add(1, Ordering::Relaxed);
        (0..n)
            .map(|k| (rotation + k) % n)
            .find(|&i| (self.ops[i].ready)())
    }

    /// Block until one registered operation is ready and return it.
    pub fn select(&mut self) -> SelectedOperation {
        assert!(!self.ops.is_empty(), "select with no operations");
        // Fast path: something is already ready.
        if let Some(i) = self.poll() {
            return SelectedOperation { index: i };
        }
        // Slow path: register a waker everywhere, then re-check before each
        // sleep (a send between the poll and the registration would
        // otherwise be missed; after registration every send signals us).
        let waker = Arc::new(SelectWaker::new());
        for op in &self.ops {
            (op.register)(&waker);
        }
        loop {
            if let Some(i) = self.poll() {
                // Dropping `waker` leaves only dead weak refs behind; the
                // channels sweep those on their next signal pass.
                return SelectedOperation { index: i };
            }
            waker.wait();
        }
    }
}

pub struct SelectedOperation {
    index: usize,
}

impl SelectedOperation {
    pub fn index(&self) -> usize {
        self.index
    }

    /// Complete the selected operation by receiving from `r`. The caller
    /// must pass the receiver registered at this operation's index, as with
    /// the real crate.
    pub fn recv<T>(self, r: &Receiver<T>) -> Result<T, RecvError> {
        r.recv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = bounded::<i32>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = bounded::<i32>(1);
        drop(rx2);
        assert!(tx2.send(5).is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap();
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn select_picks_ready_side() {
        let (tx_a, rx_a) = bounded::<i32>(1);
        let (_tx_b, rx_b) = bounded::<i32>(1);
        tx_a.send(7).unwrap();
        let mut sel = Select::new();
        sel.recv(&rx_a);
        sel.recv(&rx_b);
        let op = sel.select();
        assert_eq!(op.index(), 0);
        assert_eq!(op.recv(&rx_a), Ok(7));
    }
}
