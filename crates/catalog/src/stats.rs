//! Statistics records: table stats and access costs.

use serde::{Deserialize, Serialize};

/// What the catalog believes about a source's relation. All fields optional
/// — data integration systems operate with "an absence of quality
/// statistics" (§1.1).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Estimated cardinality, if known.
    pub cardinality: Option<usize>,
    /// Estimated average tuple width in bytes, if known.
    pub avg_tuple_bytes: Option<usize>,
}

impl TableStats {
    /// Stats with a known cardinality.
    pub fn with_cardinality(cardinality: usize) -> Self {
        TableStats {
            cardinality: Some(cardinality),
            avg_tuple_bytes: None,
        }
    }

    /// Stats with cardinality and tuple width.
    pub fn new(cardinality: usize, avg_tuple_bytes: usize) -> Self {
        TableStats {
            cardinality: Some(cardinality),
            avg_tuple_bytes: Some(avg_tuple_bytes),
        }
    }

    /// Completely unknown stats.
    pub fn unknown() -> Self {
        TableStats::default()
    }

    /// Whether the optimizer has enough information to cost a plan over
    /// this source (missing cardinality ⇒ candidate for a partial plan,
    /// §3).
    pub fn is_known(&self) -> bool {
        self.cardinality.is_some()
    }

    /// Estimated bytes for the whole relation, when both stats are present.
    pub fn estimated_bytes(&self) -> Option<usize> {
        Some(self.cardinality? * self.avg_tuple_bytes?)
    }
}

/// Cost of accessing a source (the catalog's model of its link).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessCost {
    /// Expected delay before the first tuple, milliseconds.
    pub initial_latency_ms: f64,
    /// Expected per-tuple transfer time, milliseconds.
    pub per_tuple_ms: f64,
}

impl Default for AccessCost {
    fn default() -> Self {
        // A fast local source.
        AccessCost {
            initial_latency_ms: 1.0,
            per_tuple_ms: 0.001,
        }
    }
}

impl AccessCost {
    /// Construct from latency and bandwidth figures.
    pub fn new(initial_latency_ms: f64, per_tuple_ms: f64) -> Self {
        AccessCost {
            initial_latency_ms,
            per_tuple_ms,
        }
    }

    /// Expected milliseconds to transfer `n` tuples.
    pub fn transfer_ms(&self, n: usize) -> f64 {
        self.initial_latency_ms + self.per_tuple_ms * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_stats_are_unknown() {
        let s = TableStats::unknown();
        assert!(!s.is_known());
        assert_eq!(s.estimated_bytes(), None);
    }

    #[test]
    fn estimated_bytes_multiplies() {
        let s = TableStats::new(100, 64);
        assert!(s.is_known());
        assert_eq!(s.estimated_bytes(), Some(6_400));
    }

    #[test]
    fn transfer_cost_is_affine() {
        let c = AccessCost::new(10.0, 0.5);
        assert_eq!(c.transfer_ms(0), 10.0);
        assert_eq!(c.transfer_ms(100), 60.0);
    }
}
