//! # tukwila-catalog
//!
//! The data source catalog (§2 of the paper): per-source metadata the
//! optimizer and reformulator consult.
//!
//! The catalog stores three kinds of metadata:
//!
//! 1. **Semantic descriptions** — which mediated-schema relation each source
//!    serves ([`SourceDesc::mediated_relation`]).
//! 2. **Overlap information** — for pairs of sources, the probability that a
//!    value appearing in one also appears in the other (used by collector
//!    policies; overlap 1.0 in both directions marks mirrors).
//! 3. **Key statistics** — cardinalities, per-source access costs, and join
//!    selectivities. Any of these may be *missing* (`None`) or *wrong*: the
//!    whole point of Tukwila is adapting when they are. The interleaving
//!    loop writes corrected statistics back through
//!    [`Catalog::record_observed_cardinality`].

pub mod catalog;
pub mod stats;

pub use catalog::{Catalog, OverlapInfo, SourceDesc};
pub use stats::{AccessCost, TableStats};
