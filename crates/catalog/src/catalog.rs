//! The catalog proper: source descriptions, overlap matrix, selectivities.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use tukwila_common::{Result, Schema, TukwilaError};

use crate::stats::{AccessCost, TableStats};

/// Description of one registered data source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceDesc {
    /// Source name (matches the source registry).
    pub name: String,
    /// Mediated-schema relation this source serves (semantic description;
    /// this paper's scope is "a single query with disjunction at the
    /// leaves", so coverage is per-relation).
    pub mediated_relation: String,
    /// Schema of the data the source returns.
    pub schema: Schema,
    /// Believed statistics (may be absent or wrong).
    pub stats: TableStats,
    /// Believed access cost.
    pub cost: AccessCost,
}

impl SourceDesc {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        mediated_relation: impl Into<String>,
        schema: Schema,
    ) -> Self {
        SourceDesc {
            name: name.into(),
            mediated_relation: mediated_relation.into(),
            schema,
            stats: TableStats::unknown(),
            cost: AccessCost::default(),
        }
    }

    /// Attach stats.
    pub fn with_stats(mut self, stats: TableStats) -> Self {
        self.stats = stats;
        self
    }

    /// Attach an access cost.
    pub fn with_cost(mut self, cost: AccessCost) -> Self {
        self.cost = cost;
        self
    }
}

/// Pairwise overlap: `p_b_given_a` = probability a value in source A also
/// appears in source B (as in Florescu/Koller/Levy, cited in §2/§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapInfo {
    /// P(value ∈ B | value ∈ A).
    pub p_b_given_a: f64,
    /// P(value ∈ A | value ∈ B).
    pub p_a_given_b: f64,
}

impl OverlapInfo {
    /// Symmetric overlap.
    pub fn symmetric(p: f64) -> Self {
        OverlapInfo {
            p_b_given_a: p,
            p_a_given_b: p,
        }
    }

    /// Whether the pair are full mirrors of each other.
    pub fn is_mirror(&self) -> bool {
        self.p_b_given_a >= 1.0 && self.p_a_given_b >= 1.0
    }
}

/// The data source catalog (§2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    sources: BTreeMap<String, SourceDesc>,
    /// mediated relation → source names (insertion order preserved via sort
    /// on read for determinism).
    overlap: HashMap<(String, String), OverlapInfo>,
    /// Join selectivity estimates keyed by (qualified column, qualified
    /// column), order-normalized. These are *estimates* the experiments
    /// deliberately corrupt (§6.4: "it had to base its intermediate result
    /// cardinalities on estimates of join selectivities").
    selectivities: HashMap<(String, String), f64>,
    /// Cardinalities observed at runtime (fragment materializations, full
    /// source reads) — authoritative, overriding `stats`.
    observed: HashMap<String, usize>,
    /// Fallback join selectivity when no estimate exists.
    default_selectivity: Option<f64>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register (or replace) a source description.
    pub fn add_source(&mut self, desc: SourceDesc) {
        self.sources.insert(desc.name.clone(), desc);
    }

    /// Look up a source.
    pub fn source(&self, name: &str) -> Result<&SourceDesc> {
        self.sources
            .get(name)
            .ok_or_else(|| TukwilaError::Reformulation(format!("unknown source `{name}`")))
    }

    /// All sources serving a mediated relation, sorted by name (overlap
    /// policies then pick the order).
    pub fn sources_for(&self, mediated_relation: &str) -> Vec<&SourceDesc> {
        let mut v: Vec<&SourceDesc> = self
            .sources
            .values()
            .filter(|s| s.mediated_relation == mediated_relation)
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// All registered sources, sorted by name.
    pub fn all_sources(&self) -> Vec<&SourceDesc> {
        self.sources.values().collect()
    }

    /// Record pairwise overlap information.
    pub fn set_overlap(&mut self, a: &str, b: &str, info: OverlapInfo) {
        self.overlap.insert((a.to_string(), b.to_string()), info);
        // store the flipped view too so lookups are direction-free
        self.overlap.insert(
            (b.to_string(), a.to_string()),
            OverlapInfo {
                p_b_given_a: info.p_a_given_b,
                p_a_given_b: info.p_b_given_a,
            },
        );
    }

    /// Overlap between two sources, if recorded.
    pub fn overlap(&self, a: &str, b: &str) -> Option<OverlapInfo> {
        self.overlap.get(&(a.to_string(), b.to_string())).copied()
    }

    /// Whether two sources are mirrors.
    pub fn are_mirrors(&self, a: &str, b: &str) -> bool {
        self.overlap(a, b).map(|o| o.is_mirror()).unwrap_or(false)
    }

    /// Record a join selectivity estimate between two qualified columns
    /// (e.g. `"lineitem.l_orderkey"`, `"orders.o_orderkey"`).
    pub fn set_join_selectivity(&mut self, col_a: &str, col_b: &str, selectivity: f64) {
        let key = normalize(col_a, col_b);
        self.selectivities.insert(key, selectivity);
    }

    /// Join selectivity estimate for a column pair, if present.
    pub fn join_selectivity(&self, col_a: &str, col_b: &str) -> Option<f64> {
        self.selectivities.get(&normalize(col_a, col_b)).copied()
    }

    /// Set the fallback selectivity used when no per-pair estimate exists.
    pub fn set_default_selectivity(&mut self, s: f64) {
        self.default_selectivity = Some(s);
    }

    /// The fallback selectivity (None = optimizer must treat the join as
    /// unknown, a trigger for partial planning).
    pub fn default_selectivity(&self) -> Option<f64> {
        self.default_selectivity
    }

    /// Record a cardinality observed at runtime (authoritative).
    pub fn record_observed_cardinality(&mut self, name: &str, cardinality: usize) {
        self.observed.insert(name.to_string(), cardinality);
    }

    /// Best-known cardinality: observed if available, else the catalog
    /// estimate.
    pub fn cardinality(&self, name: &str) -> Option<usize> {
        self.observed
            .get(name)
            .copied()
            .or_else(|| self.sources.get(name).and_then(|s| s.stats.cardinality))
    }

    /// Whether the cardinality comes from runtime observation.
    pub fn is_observed(&self, name: &str) -> bool {
        self.observed.contains_key(name)
    }
}

fn normalize(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_common::DataType;

    fn schema() -> Schema {
        Schema::of("bib", &[("title", DataType::Str)])
    }

    fn catalog_with_two_mirrors() -> Catalog {
        let mut c = Catalog::new();
        c.add_source(
            SourceDesc::new("bib-eu", "bib", schema())
                .with_stats(TableStats::with_cardinality(1_000)),
        );
        c.add_source(SourceDesc::new("bib-us", "bib", schema()));
        c.set_overlap("bib-eu", "bib-us", OverlapInfo::symmetric(1.0));
        c
    }

    #[test]
    fn sources_for_relation_sorted() {
        let c = catalog_with_two_mirrors();
        let names: Vec<&str> = c
            .sources_for("bib")
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["bib-eu", "bib-us"]);
        assert!(c.sources_for("movies").is_empty());
    }

    #[test]
    fn mirror_detection() {
        let c = catalog_with_two_mirrors();
        assert!(c.are_mirrors("bib-eu", "bib-us"));
        assert!(c.are_mirrors("bib-us", "bib-eu")); // direction-free
        assert!(!c.are_mirrors("bib-eu", "nope"));
    }

    #[test]
    fn asymmetric_overlap_flips() {
        let mut c = Catalog::new();
        c.set_overlap(
            "a",
            "b",
            OverlapInfo {
                p_b_given_a: 0.9,
                p_a_given_b: 0.3,
            },
        );
        let flipped = c.overlap("b", "a").unwrap();
        assert_eq!(flipped.p_b_given_a, 0.3);
        assert_eq!(flipped.p_a_given_b, 0.9);
    }

    #[test]
    fn selectivity_is_order_insensitive() {
        let mut c = Catalog::new();
        c.set_join_selectivity("l.k", "o.k", 0.001);
        assert_eq!(c.join_selectivity("o.k", "l.k"), Some(0.001));
        assert_eq!(c.join_selectivity("o.k", "x.k"), None);
        c.set_default_selectivity(0.1);
        assert_eq!(c.default_selectivity(), Some(0.1));
    }

    #[test]
    fn observed_cardinality_overrides_estimate() {
        let mut c = catalog_with_two_mirrors();
        assert_eq!(c.cardinality("bib-eu"), Some(1_000));
        assert!(!c.is_observed("bib-eu"));
        c.record_observed_cardinality("bib-eu", 2_345);
        assert_eq!(c.cardinality("bib-eu"), Some(2_345));
        assert!(c.is_observed("bib-eu"));
        // unknown stats stay unknown until observed
        assert_eq!(c.cardinality("bib-us"), None);
    }

    #[test]
    fn unknown_source_is_reformulation_error() {
        let c = Catalog::new();
        assert_eq!(c.source("ghost").unwrap_err().kind(), "reformulation");
    }
}
