//! Write-path microharness for the paired buffer-reuse measurement
//! recorded in EXPERIMENTS.md ("Wire write path"). Ignored by default —
//! it prints timings instead of asserting them:
//!
//! ```text
//! cargo test -p tukwila-net --release --test wire_micro -- --ignored --nocapture
//! ```
//!
//! Streams a realistic batch (1024 rows, int/int/str columns) through the
//! per-frame encode + framed-write path many times, interleaving the
//! shipped implementation (`FrameWriter::send_batch`: reused
//! per-connection buffer, two `write_all` calls) with a baseline that
//! allocates a fresh encode buffer per frame — alternating inside one
//! process so machine drift hits both variants equally.

use std::time::Instant;

use tukwila_common::{tuple, TupleBatch};
use tukwila_net::FrameWriter;
use tukwila_storage::codec;

const FRAMES: usize = 20_000;
const ROUNDS: usize = 7;

fn payload_batch() -> TupleBatch {
    let mut batch = TupleBatch::with_capacity(1024);
    for i in 0..1024i64 {
        batch.push(tuple![i, i * 7, format!("payload-{i:04}")]);
    }
    batch
}

/// The pre-reuse write path: a fresh unreserved encode buffer per frame,
/// header and payload written separately.
fn send_batch_fresh_alloc(sink: &mut impl std::io::Write, batch: &TupleBatch) -> u64 {
    let mut buf = Vec::new();
    codec::encode_batch_frame(batch, &mut buf);
    let mut header = [5u8; 5]; // K_BATCH
    header[1..5].copy_from_slice(&(buf.len() as u32).to_le_bytes());
    sink.write_all(&header).expect("write header");
    sink.write_all(&buf).expect("write payload");
    5 + buf.len() as u64
}

#[test]
#[ignore = "microbench: prints timings, run manually with --nocapture"]
fn wire_write_path_throughput() {
    let batch = payload_batch();
    let mut best_reuse = f64::INFINITY;
    let mut best_fresh = f64::INFINITY;
    let mut bytes_per_round = 0u64;
    for round in 0..ROUNDS {
        // Shipped path: one FrameWriter per "connection", buffer reused
        // across frames.
        let mut w = FrameWriter::new(std::io::sink());
        let t0 = Instant::now();
        let mut bytes = 0u64;
        for _ in 0..FRAMES {
            bytes += w.send_batch(&batch).expect("send_batch into sink");
        }
        let dt_reuse = t0.elapsed().as_secs_f64();
        best_reuse = best_reuse.min(dt_reuse);
        bytes_per_round = bytes;

        // Baseline: fresh allocation per frame.
        let mut sink = std::io::sink();
        let t0 = Instant::now();
        let mut fresh_bytes = 0u64;
        for _ in 0..FRAMES {
            fresh_bytes += send_batch_fresh_alloc(&mut sink, &batch);
        }
        let dt_fresh = t0.elapsed().as_secs_f64();
        best_fresh = best_fresh.min(dt_fresh);
        assert_eq!(fresh_bytes, bytes, "variants must frame identically");

        println!(
            "round {round}: reuse {:.1} ms, fresh-alloc {:.1} ms ({bytes} bytes each)",
            dt_reuse * 1e3,
            dt_fresh * 1e3
        );
    }
    println!(
        "best-of-{ROUNDS}: reuse {:.1} ms ({:.0} MB/s), fresh-alloc {:.1} ms ({:.0} MB/s), ratio {:.3}",
        best_reuse * 1e3,
        bytes_per_round as f64 / best_reuse / 1e6,
        best_fresh * 1e3,
        bytes_per_round as f64 / best_fresh / 1e6,
        best_fresh / best_reuse
    );
}
