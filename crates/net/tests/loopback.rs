//! Distributed ≡ local: an exchange scattered to in-process TCP workers
//! (loopback harness) must produce exactly the local exchange's multiset
//! for every join kind, worker count, spill budget, and batch size.
//!
//! Workers share the coordinator's `SourceRegistry` clone, so the whole
//! cluster runs deterministically inside one test process while still
//! exercising the real wire protocol end to end.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use tukwila_common::{DataType, Relation, Schema, Tuple, Value};
use tukwila_exec::runtime::{ExecEnv, PlanRuntime};
use tukwila_exec::{build_operator, drain};
use tukwila_net::{Cluster, WorkerHandle, WorkerServer};
use tukwila_plan::{JoinKind, OperatorNode, OverflowMethod, PlanBuilder, QueryPlan};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

fn multiset(tuples: &[Tuple]) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.clone()).or_insert(0) += 1;
    }
    m
}

fn rel_of(name: &str, rows: &[(Option<i64>, i64)]) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for (k, v) in rows {
        let key = match k {
            Some(k) => Value::Int(*k),
            None => Value::Null,
        };
        r.push(Tuple::new(vec![key, Value::Int(*v)]));
    }
    r
}

fn keyed_rows(n: i64, dup: i64, null_every: Option<i64>) -> Vec<(Option<i64>, i64)> {
    (0..n)
        .map(|i| {
            let k = match null_every {
                Some(e) if i % e == 0 => None,
                _ => Some(i % dup.max(1)),
            };
            (k, i)
        })
        .collect()
}

fn registry(l: &Relation, r: &Relation) -> SourceRegistry {
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new("L", l.clone(), LinkModel::instant()));
    reg.register(SimulatedSource::new("R", r.clone(), LinkModel::instant()));
    reg
}

fn exchange_plan(kind: JoinKind, budget: Option<usize>, partitions: usize) -> QueryPlan {
    let mut b = PlanBuilder::new();
    let ls = b.wrapper_scan("L");
    let rs = b.wrapper_scan("R");
    let mut j: OperatorNode = match kind {
        JoinKind::DoublePipelined => {
            b.dpj(ls, rs, "k", "k", OverflowMethod::IncrementalSymmetricFlush)
        }
        other => b.join(other, ls, rs, "k", "k"),
    };
    if let Some(bytes) = budget {
        j = j.with_memory(bytes);
    }
    let x = b.exchange(j, partitions);
    let f = b.fragment(x, "out");
    b.build(f)
}

fn run_local(l: &Relation, r: &Relation, plan: &QueryPlan, batch_size: usize) -> Vec<Tuple> {
    let env = ExecEnv::new(registry(l, r)).with_batch_size(batch_size);
    let rt = PlanRuntime::for_plan(plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt).expect("build local plan");
    drain(op.as_mut()).expect("drain local plan")
}

/// Spin up `workers` loopback worker processes-in-threads, point a
/// [`Cluster`] at them, and run the plan with the cluster installed as the
/// engine's shard executor.
fn run_distributed(
    l: &Relation,
    r: &Relation,
    plan: &QueryPlan,
    batch_size: usize,
    workers: usize,
) -> tukwila_common::Result<Vec<Tuple>> {
    let reg = registry(l, r);
    let handles: Vec<WorkerHandle> = (0..workers)
        .map(|_| {
            WorkerServer::bind("127.0.0.1:0", reg.clone())
                .expect("bind worker")
                .spawn()
                .expect("spawn worker")
        })
        .collect();
    let addrs: Vec<String> = handles.iter().map(|h| h.addr()).collect();
    let cluster = Cluster::connect(&addrs)?;
    let env = ExecEnv::new(reg)
        .with_batch_size(batch_size)
        .with_shard_executor(Arc::new(cluster));
    let rt = PlanRuntime::for_plan(plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt)?;
    let out = drain(op.as_mut());
    for h in handles {
        h.shutdown();
    }
    out
}

const ALL_KINDS: [JoinKind; 5] = [
    JoinKind::DoublePipelined,
    JoinKind::HybridHash,
    JoinKind::GraceHash,
    JoinKind::NestedLoops,
    JoinKind::SortMerge,
];

#[test]
fn distributed_matches_local_for_every_join_kind() {
    let l = rel_of("l", &keyed_rows(200, 16, Some(13)));
    let r = rel_of("r", &keyed_rows(150, 16, Some(7)));
    for kind in ALL_KINDS {
        let plan = exchange_plan(kind, None, 2);
        let gold = multiset(&run_local(&l, &r, &plan, 64));
        let got = run_distributed(&l, &r, &plan, 64, 2).expect("distributed run");
        assert_eq!(multiset(&got), gold, "{kind:?} diverged over loopback");
    }
}

#[test]
fn distributed_matches_local_across_worker_counts() {
    let l = rel_of("l", &keyed_rows(300, 20, Some(11)));
    let r = rel_of("r", &keyed_rows(240, 20, None));
    for workers in [1usize, 2, 4] {
        let plan = exchange_plan(JoinKind::DoublePipelined, None, workers);
        let gold = multiset(&run_local(&l, &r, &plan, 64));
        let got = run_distributed(&l, &r, &plan, 64, workers).expect("distributed run");
        assert_eq!(multiset(&got), gold, "{workers} workers diverged");
    }
}

#[test]
fn distributed_spills_under_budget_and_stays_exact() {
    let l = rel_of("l", &keyed_rows(400, 25, None));
    let r = rel_of("r", &keyed_rows(400, 25, None));
    for kind in [JoinKind::DoublePipelined, JoinKind::HybridHash] {
        let plan = exchange_plan(kind, Some(3_000), 2);
        let gold = multiset(&run_local(&l, &r, &plan, 64));
        let got = run_distributed(&l, &r, &plan, 64, 2).expect("distributed run");
        assert_eq!(multiset(&got), gold, "{kind:?} with tiny budget diverged");
    }
}

#[test]
fn more_shards_than_workers_multiplexes() {
    let l = rel_of("l", &keyed_rows(200, 10, None));
    let r = rel_of("r", &keyed_rows(200, 10, None));
    // 4 shards dealt round-robin over 2 workers.
    let plan = exchange_plan(JoinKind::HybridHash, None, 4);
    let gold = multiset(&run_local(&l, &r, &plan, 64));
    let got = run_distributed(&l, &r, &plan, 64, 2).expect("distributed run");
    assert_eq!(multiset(&got), gold);
}

#[test]
fn connect_to_dead_address_fails_fast() {
    // Bind-then-drop gives an address that refuses connections.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        l.local_addr().expect("probe addr").port()
    };
    let err = Cluster::connect(&[format!("127.0.0.1:{port}")]);
    assert!(err.is_err(), "connecting to a dead worker must error");
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(Option<i64>, i64)>> {
    proptest::collection::vec(
        (
            prop_oneof![3 => (0i64..24).prop_map(Some), 1 => Just(None)],
            0i64..1_000,
        ),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite: distributed execution is multiset-equal to local for all
    /// join kinds × worker counts {1,2,4} × spill budgets.
    #[test]
    fn prop_distributed_equals_local(
        lrows in arb_rows(80),
        rrows in arb_rows(80),
        kind_ix in 0usize..ALL_KINDS.len(),
        workers_ix in 0usize..3,
        budget in prop_oneof![Just(None), Just(Some(2_000usize)), Just(Some(512usize))],
        batch_size in prop_oneof![Just(1usize), Just(7), Just(64)],
    ) {
        let kind = ALL_KINDS[kind_ix];
        let workers = [1usize, 2, 4][workers_ix];
        let l = rel_of("l", &lrows);
        let r = rel_of("r", &rrows);
        let plan = exchange_plan(kind, budget, workers);
        let gold = multiset(&run_local(&l, &r, &plan, batch_size));
        let got = run_distributed(&l, &r, &plan, batch_size, workers)
            .map_err(|e| TestCaseError(format!("distributed run failed: {e}")))?;
        prop_assert_eq!(multiset(&got), gold);
    }
}
