//! `tukwila-net`: distributed exchange — shared-nothing coordinator/worker
//! shard execution over a columnar wire protocol (DESIGN.md §12).
//!
//! The optimizer-lowered `Exchange` over a join normally scatters its
//! partition pipelines across local threads
//! (`tukwila_exec::operators::Exchange`). With a [`Cluster`] installed as
//! the engine's [`tukwila_exec::ShardExecutor`], the same exchange instead
//! scatters them to worker *processes* over TCP
//! (`tukwila_exec::operators::RemoteExchange`) and gathers their union.
//! Each worker runs a [`WorkerServer`], rebuilds the join's inputs from
//! its own sources, keeps its shard with the exact hash routing the local
//! exchange uses, and streams result batches back in the spill codec's
//! columnar frame format under credit-based backpressure.
//!
//! `std::net` only — no external networking dependencies.

pub mod cluster;
pub mod protocol;
pub mod worker;

pub use cluster::Cluster;
pub use protocol::{
    decode_msg, error_from_wire, Dispatch, FrameReader, FrameWriter, Msg, CREDIT_WINDOW,
    MAX_FRAME_LEN, NET_MAGIC, NET_VERSION,
};
pub use worker::{WorkerHandle, WorkerServer};
