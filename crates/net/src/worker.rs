//! The worker half of distributed exchange: a TCP server that accepts one
//! shard dispatch per connection, executes it against its own sources, and
//! streams the shard's output back under credit-based backpressure.
//!
//! Shared-nothing: a worker rebuilds the dispatched fragment's input
//! subtrees from its own [`SourceRegistry`] (plus any coordinator-shipped
//! tables) and keeps only its shard via
//! [`tukwila_exec::ShardFilter`] — input tuples never transit the
//! coordinator.
//!
//! Concurrency per connection: the serving thread executes the fragment
//! and writes `Batch` frames; a companion reader thread drains inbound
//! `Credit` and `Cancel` frames so backpressure refills and cancellation
//! land even while the serving thread is deep inside a join build.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use tukwila_common::{Result, TukwilaError};
use tukwila_exec::runtime::{ExecEnv, PlanRuntime};
use tukwila_exec::{build_shard_root, CancelKind, QueryControl, ShardStats};
use tukwila_plan::parse_plan;
use tukwila_source::SourceRegistry;
use tukwila_storage::MemoryManager;

use crate::protocol::{decode_msg, Dispatch, FrameReader, FrameWriter, Msg, NET_VERSION};

/// How long a blocked socket read waits before re-checking stop/cancel
/// flags.
const READ_TICK: Duration = Duration::from_millis(100);
/// Accept-loop poll interval while idle.
const ACCEPT_TICK: Duration = Duration::from_millis(5);
/// Sleep while blocked on send credit.
const CREDIT_TICK: Duration = Duration::from_micros(200);

/// A worker process's server: binds a listener and serves shard dispatches
/// until stopped. Each accepted connection runs one handshake + one
/// dispatch on its own thread.
pub struct WorkerServer {
    listener: TcpListener,
    sources: SourceRegistry,
}

impl WorkerServer {
    /// Bind to `addr` (use port 0 for an ephemeral port) serving shards
    /// against `sources`.
    pub fn bind(addr: &str, sources: SourceRegistry) -> Result<WorkerServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(WorkerServer { listener, sources })
    }

    /// The bound address (reports the ephemeral port after a `:0` bind).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// Serve until `stop` is set. Connection threads are detached; they
    /// exit on their own when their coordinator hangs up.
    pub fn run(&self, stop: &AtomicBool) {
        while !stop.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((conn, _peer)) => {
                    let sources = self.sources.clone();
                    thread::spawn(move || {
                        // A failed connection is the coordinator's problem
                        // to report (probe connections also land here when
                        // they hang up after the handshake); the worker
                        // just serves the next one.
                        let _ = serve_conn(conn, sources);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_TICK);
                }
                Err(_) => thread::sleep(ACCEPT_TICK),
            }
        }
    }

    /// Run the server on a background thread; the returned handle stops it
    /// on [`WorkerHandle::shutdown`] or drop. Used by in-process tests and
    /// the loopback harness.
    pub fn spawn(self) -> Result<WorkerHandle> {
        let addr = self.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = thread::spawn(move || self.run(&stop2));
        Ok(WorkerHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }
}

/// Handle on a background [`WorkerServer`]; stops the server when shut
/// down or dropped.
pub struct WorkerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl WorkerHandle {
    /// The worker's listen address, as a dialable string.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Wait for one complete frame, ticking through read timeouts.
fn read_msg<R: std::io::Read>(reader: &mut FrameReader<R>) -> Result<Msg> {
    loop {
        if let Some((kind, payload)) = reader.read_frame()? {
            return decode_msg(kind, payload);
        }
    }
}

/// Serve one connection: handshake, one dispatch, stream the shard.
fn serve_conn(conn: TcpStream, sources: SourceRegistry) -> Result<()> {
    conn.set_nodelay(true)?;
    conn.set_read_timeout(Some(READ_TICK))?;
    let mut reader = FrameReader::new(conn.try_clone()?);
    let mut writer = FrameWriter::new(conn);

    match read_msg(&mut reader)? {
        Msg::Hello { version } if version == NET_VERSION => {
            writer.send_hello_ack()?;
        }
        Msg::Hello { version } => {
            let e = TukwilaError::Io(format!(
                "net: protocol version mismatch (worker {NET_VERSION}, coordinator {version})"
            ));
            let _ = writer.send_error(&e);
            return Err(e);
        }
        other => {
            return Err(TukwilaError::Io(format!(
                "net: expected Hello, got {other:?}"
            )))
        }
    }

    let dispatch = match read_msg(&mut reader)? {
        Msg::Dispatch(d) => *d,
        other => {
            return Err(TukwilaError::Io(format!(
                "net: expected Dispatch, got {other:?}"
            )))
        }
    };

    // Send-credit pool, refilled by the reader thread as Credit frames
    // arrive. i64 so the transient fetch_sub below-zero undo is benign.
    let credits = Arc::new(AtomicI64::new(dispatch.initial_credits.max(1) as i64));
    let control = match dispatch.deadline {
        Some(budget) => QueryControl::with_deadline(budget),
        None => QueryControl::unbounded(),
    };
    let done = Arc::new(AtomicBool::new(false));

    let reader_thread = {
        let credits = credits.clone();
        let control = control.clone();
        let done = done.clone();
        thread::spawn(move || loop {
            if done.load(Ordering::Relaxed) {
                break;
            }
            match reader.read_frame() {
                Ok(None) => {}
                Ok(Some((kind, payload))) => match decode_msg(kind, payload) {
                    Ok(Msg::Credit { n }) => {
                        credits.fetch_add(n as i64, Ordering::AcqRel);
                    }
                    // Cancel — or anything else out of protocol — stops
                    // the shard.
                    Ok(_) => {
                        control.cancel(CancelKind::User);
                        break;
                    }
                    Err(_) => {
                        control.cancel(CancelKind::User);
                        break;
                    }
                },
                // EOF or transport error: the coordinator is gone; kill
                // the shard rather than stream into the void.
                Err(_) => {
                    control.cancel(CancelKind::User);
                    break;
                }
            }
        })
    };

    let outcome = run_dispatch(&dispatch, sources, &mut writer, &credits, &control);
    match &outcome {
        Ok(stats) => {
            let _ = writer.send_done(stats);
        }
        Err(e) => {
            let _ = writer.send_error(e);
        }
    }
    done.store(true, Ordering::Relaxed);
    let _ = reader_thread.join();
    outcome.map(|_| ())
}

/// Block until a send credit is available; counts one stall episode per
/// dry spell and aborts promptly on cancellation.
fn acquire_credit(
    credits: &AtomicI64,
    control: &Arc<QueryControl>,
    stalls: &mut u64,
) -> Result<()> {
    if credits.fetch_sub(1, Ordering::AcqRel) > 0 {
        return Ok(());
    }
    credits.fetch_add(1, Ordering::AcqRel);
    *stalls += 1;
    loop {
        control.check()?;
        thread::sleep(CREDIT_TICK);
        if credits.fetch_sub(1, Ordering::AcqRel) > 0 {
            return Ok(());
        }
        credits.fetch_add(1, Ordering::AcqRel);
    }
}

/// Execute one shard dispatch and stream its batches.
fn run_dispatch<W: Write>(
    d: &Dispatch,
    sources: SourceRegistry,
    writer: &mut FrameWriter<W>,
    credits: &AtomicI64,
    control: &Arc<QueryControl>,
) -> Result<ShardStats> {
    let mut env = ExecEnv::new(sources).with_batch_size(d.batch_size.max(1) as usize);
    if d.shard_budget > 0 {
        env.memory = MemoryManager::new().with_budget(d.shard_budget as usize);
    }
    for (name, rel) in &d.tables {
        env.local.put(name.clone(), (**rel).clone());
    }

    let plan = parse_plan(&d.plan_text)?;
    let rt = PlanRuntime::for_plan_controlled(&plan, env, control.clone());
    let frag = plan
        .fragment(plan.output)
        .ok_or_else(|| TukwilaError::Plan("net: dispatched plan has no output fragment".into()))?;
    let mut op = build_shard_root(
        &frag.root,
        &rt,
        d.shard_index as usize,
        d.shard_count as usize,
    )?;

    op.open()?;
    writer.send_started(op.schema())?;

    let mut stats = ShardStats::default();
    let result = loop {
        if let Err(e) = control.check() {
            break Err(e);
        }
        let batch = match op.next_batch() {
            Ok(Some(b)) => b,
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        };
        if batch.is_empty() {
            continue;
        }
        if let Err(e) = acquire_credit(credits, control, &mut stats.backpressure_stalls) {
            break Err(e);
        }
        stats.rows += batch.len() as u64;
        stats.batches += 1;
        if let Err(e) = writer.send_batch(&batch) {
            break Err(e);
        }
    };
    let closed = op.close();
    result?;
    closed?;
    stats.spill_tuples = rt.env().spill.stats().tuples_written() as u64;
    Ok(stats)
}
