//! The coordinator half of distributed exchange: a [`Cluster`] dials a
//! pool of worker addresses and implements
//! [`tukwila_exec::ShardExecutor`] by scattering one shard dispatch per
//! partition (round-robin across workers) and returning a TCP-backed
//! [`tukwila_exec::ShardStream`] per shard.
//!
//! Failure semantics: a worker dying mid-query surfaces on its stream as
//! an `Io` error (the frame reader sees EOF, never a hang — reads tick
//! every 50ms to observe cancel flags) and emits a `worker-lost` trace
//! event; the consuming `RemoteExchange` then fails the query and releases
//! the shard's memory reservation.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tukwila_common::{Result, Schema, TukwilaError, TupleBatch};
use tukwila_exec::{QueryControl, ShardExecutor, ShardSpec, ShardStats, ShardStream};
use tukwila_trace::{QueryTrace, TraceEvent};

use crate::protocol::{
    decode_msg, error_from_wire, Dispatch, FrameReader, FrameWriter, Msg, CREDIT_WINDOW,
    NET_VERSION,
};

/// Handshake must complete within this long.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);
/// Steady-state read tick: how long a blocked batch read waits before
/// re-checking abort/cancel flags.
const STREAM_TICK: Duration = Duration::from_millis(50);

/// A pool of worker addresses acting as the coordinator's shard executor.
/// Shards are dealt round-robin: shard `i` runs on worker `i % workers`,
/// so partition degrees above the worker count multiplex cleanly.
pub struct Cluster {
    addrs: Vec<String>,
}

impl Cluster {
    /// A pool over `addrs` without probing — workers may come up later;
    /// dial errors surface when a query's exchange opens. The service tier
    /// uses this so constructing a coordinator never blocks on workers.
    pub fn new<S: AsRef<str>>(addrs: &[S]) -> Cluster {
        Cluster {
            addrs: addrs.iter().map(|a| a.as_ref().to_string()).collect(),
        }
    }

    /// Probe every address with a handshake and return the pool.
    /// Fail-fast: an unreachable or protocol-mismatched worker is an error
    /// here, not mid-query.
    pub fn connect<S: AsRef<str>>(addrs: &[S]) -> Result<Cluster> {
        if addrs.is_empty() {
            return Err(TukwilaError::Io("net: empty worker address list".into()));
        }
        let cluster = Cluster::new(addrs);
        for addr in &cluster.addrs {
            dial(addr)?;
        }
        Ok(cluster)
    }

    /// The pool's worker addresses, in dispatch order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }
}

/// Dial `addr` and complete the version handshake; returns the framed
/// connection with the steady-state read tick installed.
fn dial(addr: &str) -> Result<(FrameReader<TcpStream>, FrameWriter<TcpStream>)> {
    let conn = TcpStream::connect(addr)
        .map_err(|e| TukwilaError::Io(format!("net: connect {addr}: {e}")))?;
    conn.set_nodelay(true)?;
    conn.set_read_timeout(Some(STREAM_TICK))?;
    let mut reader = FrameReader::new(conn.try_clone()?);
    let mut writer = FrameWriter::new(conn);
    writer.send_hello()?;
    let started = Instant::now();
    loop {
        if let Some((kind, payload)) = reader.read_frame()? {
            match decode_msg(kind, payload)? {
                Msg::HelloAck { version } if version == NET_VERSION => break,
                Msg::HelloAck { version } => {
                    return Err(TukwilaError::Io(format!(
                        "net: worker {addr} speaks protocol v{version}, expected v{NET_VERSION}"
                    )))
                }
                Msg::Error { kind, message } => return Err(error_from_wire(addr, &kind, &message)),
                other => {
                    return Err(TukwilaError::Io(format!(
                        "net: worker {addr}: expected HelloAck, got {other:?}"
                    )))
                }
            }
        }
        if started.elapsed() > HANDSHAKE_TIMEOUT {
            return Err(TukwilaError::Io(format!(
                "net: worker {addr}: handshake timed out"
            )));
        }
    }
    Ok((reader, writer))
}

impl ShardExecutor for Cluster {
    fn worker_count(&self) -> usize {
        self.addrs.len()
    }

    fn start(
        &self,
        spec: &ShardSpec,
        control: &Arc<QueryControl>,
        trace: &Arc<QueryTrace>,
    ) -> Result<Vec<Box<dyn ShardStream>>> {
        let mut streams: Vec<Box<dyn ShardStream>> = Vec::with_capacity(spec.shard_count);
        for shard in 0..spec.shard_count {
            let addr = &self.addrs[shard % self.addrs.len()];
            let (reader, mut writer) = dial(addr)?;
            trace.emit(TraceEvent::WorkerConnected {
                worker: addr.clone(),
            });
            let dispatch = Dispatch {
                shard_index: shard as u32,
                shard_count: spec.shard_count as u32,
                batch_size: spec.batch_size as u32,
                shard_budget: spec.shard_budget as u64,
                deadline: spec.deadline,
                initial_credits: CREDIT_WINDOW,
                plan_text: spec.plan_text.clone(),
                tables: spec.tables.clone(),
            };
            let bytes = writer.send_dispatch(&dispatch)?;
            trace.emit(TraceEvent::NetBatchSent {
                worker: addr.clone(),
                bytes,
            });
            streams.push(Box::new(TcpShardStream {
                worker: addr.clone(),
                reader,
                writer,
                control: control.clone(),
                trace: trace.clone(),
                abort: Arc::new(AtomicBool::new(false)),
                stats: ShardStats::default(),
                finished: false,
            }));
        }
        Ok(streams)
    }
}

/// One shard's TCP-backed result stream at the coordinator.
struct TcpShardStream {
    worker: String,
    reader: FrameReader<TcpStream>,
    writer: FrameWriter<TcpStream>,
    control: Arc<QueryControl>,
    trace: Arc<QueryTrace>,
    abort: Arc<AtomicBool>,
    stats: ShardStats,
    finished: bool,
}

impl TcpShardStream {
    /// Bail out of a blocked read: tell the worker to stop, then surface
    /// the cancellation to the exchange.
    fn aborted(&mut self) -> TukwilaError {
        let _ = self.writer.send_cancel();
        match self.control.check() {
            Err(e) => e,
            Ok(()) => TukwilaError::Cancelled(format!("shard stream to {} aborted", self.worker)),
        }
    }

    fn lost(&mut self, e: TukwilaError) -> TukwilaError {
        self.finished = true;
        self.trace.emit(TraceEvent::WorkerLost {
            worker: self.worker.clone(),
            reason: e.to_string(),
        });
        TukwilaError::Io(format!("net: worker {} died mid-query: {e}", self.worker))
    }

    /// Wait for the next frame, observing abort/cancel on every tick.
    fn next_msg(&mut self) -> Result<(Msg, u64)> {
        loop {
            if self.abort.load(Ordering::Relaxed) {
                return Err(self.aborted());
            }
            let before = self.reader.bytes_received();
            match self.reader.read_frame() {
                Ok(None) => continue,
                Ok(Some((kind, payload))) => {
                    let msg = decode_msg(kind, payload)?;
                    return Ok((msg, self.reader.bytes_received() - before));
                }
                Err(e) => return Err(self.lost(e)),
            }
        }
    }
}

impl ShardStream for TcpShardStream {
    fn worker(&self) -> &str {
        &self.worker
    }

    fn open(&mut self) -> Result<Schema> {
        match self.next_msg()? {
            (Msg::Started { schema }, _) => Ok(schema),
            (Msg::Error { kind, message }, _) => {
                self.finished = true;
                Err(error_from_wire(&self.worker, &kind, &message))
            }
            (other, _) => Err(TukwilaError::Io(format!(
                "net: worker {}: expected Started, got {other:?}",
                self.worker
            ))),
        }
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if self.finished {
            return Ok(None);
        }
        match self.next_msg()? {
            (Msg::Batch(batch), bytes) => {
                self.trace.emit(TraceEvent::NetBatchReceived {
                    worker: self.worker.clone(),
                    bytes,
                });
                // Credits are advisory flow control: a worker that already
                // sent Done and hung up may reset this write, which is not
                // an error — a genuinely dead worker is detected by the
                // read path, never the credit path.
                let _ = self.writer.send_credit(1);
                Ok(Some(batch))
            }
            (Msg::Done(stats), _) => {
                self.finished = true;
                self.stats = stats;
                if stats.backpressure_stalls > 0 {
                    self.trace.emit(TraceEvent::BackpressureStall {
                        worker: self.worker.clone(),
                        stalls: stats.backpressure_stalls,
                    });
                }
                Ok(None)
            }
            (Msg::Error { kind, message }, _) => {
                self.finished = true;
                Err(error_from_wire(&self.worker, &kind, &message))
            }
            (other, _) => Err(TukwilaError::Io(format!(
                "net: worker {}: unexpected frame {other:?}",
                self.worker
            ))),
        }
    }

    fn stats(&self) -> ShardStats {
        self.stats
    }

    fn abort_handle(&self) -> Arc<AtomicBool> {
        self.abort.clone()
    }
}
