//! The coordinator/worker wire protocol (DESIGN.md §12).
//!
//! Every message is one length-prefixed frame — `[kind: u8][len: u32 LE]
//! [payload]` — whose payload reuses the spill codec's encodings wherever
//! tuples cross the wire: batch frames travel as
//! [`tukwila_storage::codec::encode_batch_frame`] bytes (bitmap-packed
//! columnar frames for columnar batches), so a batch that was encoded for
//! spilling and one encoded for the network are byte-identical.
//!
//! Conversation, coordinator side first:
//!
//! ```text
//! -> Hello{magic, version}            handshake
//! <- HelloAck{version}
//! -> Dispatch{shard, plan, tables,    one shard of one query
//!             budget, deadline, credits}
//! <- Started{schema}                  fragment opened
//! <- Batch* / -> Credit*              credit-windowed batch stream
//! <- Done{stats} | Error{kind, msg}   terminal
//! -> Cancel                           (any time) stop the shard
//! ```
//!
//! Backpressure: the worker may have at most `initial_credits` batches in
//! flight; each `Credit` from the coordinator (sent as it consumes a
//! batch) refills one send permit. A worker out of permits blocks — and
//! counts the episode in its completion stats as a backpressure stall.
//!
//! Both ends write through a [`FrameWriter`] that reuses one encode buffer
//! per connection (a fresh `Vec` per frame was measurably slower — see
//! EXPERIMENTS.md) and read through a resumable [`FrameReader`] that
//! tolerates socket read timeouts mid-frame, so blocked reads can poll
//! cancellation flags without corrupting frame alignment.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use tukwila_common::{DataType, Field, Relation, Result, Schema, TukwilaError, TupleBatch};
use tukwila_exec::ShardStats;
use tukwila_storage::codec;

/// Sanity word opening every `Hello`, so a stray client talking to a
/// worker port fails the handshake instead of confusing the framer.
pub const NET_MAGIC: u32 = 0x54_4B_57_4C; // "TKWL"
/// Protocol version; bumped on any frame-layout change.
pub const NET_VERSION: u32 = 1;
/// Upper bound on a single frame's payload, mirroring the spill codec's
/// implausible-count guards.
pub const MAX_FRAME_LEN: usize = 1 << 30;
/// Initial credit window granted in `Dispatch`: how many batches a worker
/// may send before the first `Credit` arrives back.
pub const CREDIT_WINDOW: u32 = 8;

const K_HELLO: u8 = 1;
const K_HELLO_ACK: u8 = 2;
const K_DISPATCH: u8 = 3;
const K_STARTED: u8 = 4;
const K_BATCH: u8 = 5;
const K_CREDIT: u8 = 6;
const K_DONE: u8 = 7;
const K_ERROR: u8 = 8;
const K_CANCEL: u8 = 9;

/// Deadline sentinel in `Dispatch` for "no deadline".
const NO_DEADLINE: u64 = u64::MAX;

/// One shard-dispatch payload: everything a worker needs to execute one
/// shard of a scattered exchange.
#[derive(Debug, Clone)]
pub struct Dispatch {
    /// Which shard of `shard_count` this worker runs.
    pub shard_index: u32,
    /// The exchange's partition degree.
    pub shard_count: u32,
    /// Operator batch size for the worker's engine.
    pub batch_size: u32,
    /// Per-shard memory budget in bytes (0 = unbounded).
    pub shard_budget: u64,
    /// Remaining query deadline, forwarded from the coordinator.
    pub deadline: Option<Duration>,
    /// Initial send-credit window.
    pub initial_credits: u32,
    /// The fragment as parseable plan text.
    pub plan_text: String,
    /// Coordinator-local tables the fragment scans.
    pub tables: Vec<(String, Arc<Relation>)>,
}

/// A decoded inbound message.
#[derive(Debug)]
pub enum Msg {
    /// Handshake open (magic + version checked during decode).
    Hello { version: u32 },
    /// Handshake reply.
    HelloAck { version: u32 },
    /// Shard dispatch.
    Dispatch(Box<Dispatch>),
    /// Worker opened the fragment; batches follow.
    Started { schema: Schema },
    /// One batch of shard output.
    Batch(TupleBatch),
    /// Send-credit refill.
    Credit { n: u32 },
    /// Shard completed with statistics.
    Done(ShardStats),
    /// Shard failed; `kind` is the stable `TukwilaError::kind` tag.
    Error { kind: String, message: String },
    /// Stop executing the shard.
    Cancel,
}

fn closed(what: &str) -> TukwilaError {
    TukwilaError::Io(format!("net: {what}: connection closed"))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

// ---- primitive cursor helpers -------------------------------------------

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    if *pos + n > buf.len() {
        return Err(TukwilaError::Io(format!(
            "net codec: truncated frame (need {n} bytes at {pos}, have {})",
            buf.len()
        )));
    }
    let s = &buf[*pos..*pos + n];
    *pos += n;
    Ok(s)
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    Ok(take(buf, pos, 1)?[0])
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let b = take(buf, pos, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let b = take(buf, pos, 8)?;
    let mut a = [0u8; 8];
    a.copy_from_slice(b);
    Ok(u64::from_le_bytes(a))
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let n = get_u32(buf, pos)? as usize;
    if n > MAX_FRAME_LEN {
        return Err(TukwilaError::Io(format!(
            "net codec: implausible string length {n}"
        )));
    }
    let bytes = take(buf, pos, n)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|e| TukwilaError::Io(format!("net codec: bad utf8: {e}")))
}

// ---- schema / relation payloads -----------------------------------------

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Str => 2,
        DataType::Date => 3,
        DataType::Null => 4,
    }
}

fn dtype_of(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Double,
        2 => DataType::Str,
        3 => DataType::Date,
        4 => DataType::Null,
        other => {
            return Err(TukwilaError::Io(format!(
                "net codec: unknown data type tag {other}"
            )))
        }
    })
}

fn encode_schema(schema: &Schema, out: &mut Vec<u8>) {
    out.extend_from_slice(&(schema.arity() as u32).to_le_bytes());
    for f in schema.fields() {
        put_str(&f.qualifier, out);
        put_str(&f.name, out);
        out.push(dtype_tag(f.data_type));
    }
}

fn decode_schema(buf: &[u8], pos: &mut usize) -> Result<Schema> {
    let n = get_u32(buf, pos)? as usize;
    if n > 1 << 20 {
        return Err(TukwilaError::Io(format!(
            "net codec: implausible arity {n}"
        )));
    }
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let qualifier = get_str(buf, pos)?;
        let name = get_str(buf, pos)?;
        let data_type = dtype_of(get_u8(buf, pos)?)?;
        fields.push(Field::new(qualifier, name, data_type));
    }
    Ok(Schema::new(fields))
}

/// Tuples per batch frame when a whole relation ships in a dispatch.
const TABLE_CHUNK: usize = 4096;

fn encode_relation(rel: &Relation, out: &mut Vec<u8>) {
    encode_schema(rel.schema(), out);
    let tuples = rel.tuples();
    let chunks = tuples.len().div_ceil(TABLE_CHUNK).max(1);
    out.extend_from_slice(&(chunks as u32).to_le_bytes());
    if tuples.is_empty() {
        codec::encode_batch(&[], out);
        return;
    }
    for chunk in tuples.chunks(TABLE_CHUNK) {
        codec::encode_batch(chunk, out);
    }
}

fn decode_relation(buf: &[u8], pos: &mut usize) -> Result<Relation> {
    let schema = decode_schema(buf, pos)?;
    let chunks = get_u32(buf, pos)? as usize;
    if chunks > 1 << 20 {
        return Err(TukwilaError::Io(format!(
            "net codec: implausible chunk count {chunks}"
        )));
    }
    let mut batches = Vec::with_capacity(chunks);
    for _ in 0..chunks {
        batches.push(codec::decode_batch(buf, pos)?);
    }
    Relation::from_batches(schema, batches)
}

// ---- writer --------------------------------------------------------------

/// Frame writer with a reused per-connection encode buffer: each frame is
/// encoded into the same `Vec` (cleared, capacity kept) and flushed with
/// exactly two `write_all` calls — header then payload — instead of
/// allocating a fresh buffer per frame.
pub struct FrameWriter<W: Write> {
    w: W,
    buf: Vec<u8>,
    bytes_sent: u64,
}

impl<W: Write> FrameWriter<W> {
    /// Wrap a write half.
    pub fn new(w: W) -> Self {
        FrameWriter {
            w,
            buf: Vec::with_capacity(64 * 1024),
            bytes_sent: 0,
        }
    }

    /// Total bytes written including frame headers.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Flush the buffered payload as one frame; returns its on-wire size.
    fn send_frame(&mut self, kind: u8) -> Result<u64> {
        if self.buf.len() > MAX_FRAME_LEN {
            return Err(TukwilaError::Io(format!(
                "net: frame too large ({} bytes)",
                self.buf.len()
            )));
        }
        let mut header = [0u8; 5];
        header[0] = kind;
        header[1..5].copy_from_slice(&(self.buf.len() as u32).to_le_bytes());
        self.w.write_all(&header)?;
        self.w.write_all(&self.buf)?;
        self.w.flush()?;
        let n = 5 + self.buf.len() as u64;
        self.bytes_sent += n;
        Ok(n)
    }

    /// Handshake open.
    pub fn send_hello(&mut self) -> Result<u64> {
        self.buf.clear();
        self.buf.extend_from_slice(&NET_MAGIC.to_le_bytes());
        self.buf.extend_from_slice(&NET_VERSION.to_le_bytes());
        self.send_frame(K_HELLO)
    }

    /// Handshake reply.
    pub fn send_hello_ack(&mut self) -> Result<u64> {
        self.buf.clear();
        self.buf.extend_from_slice(&NET_VERSION.to_le_bytes());
        self.send_frame(K_HELLO_ACK)
    }

    /// Shard dispatch.
    pub fn send_dispatch(&mut self, d: &Dispatch) -> Result<u64> {
        self.buf.clear();
        self.buf.extend_from_slice(&d.shard_index.to_le_bytes());
        self.buf.extend_from_slice(&d.shard_count.to_le_bytes());
        self.buf.extend_from_slice(&d.batch_size.to_le_bytes());
        self.buf.extend_from_slice(&d.shard_budget.to_le_bytes());
        let deadline_ms = d
            .deadline
            .map(|t| (t.as_millis() as u64).min(NO_DEADLINE - 1))
            .unwrap_or(NO_DEADLINE);
        self.buf.extend_from_slice(&deadline_ms.to_le_bytes());
        self.buf.extend_from_slice(&d.initial_credits.to_le_bytes());
        put_str(&d.plan_text, &mut self.buf);
        self.buf
            .extend_from_slice(&(d.tables.len() as u32).to_le_bytes());
        for (name, rel) in &d.tables {
            put_str(name, &mut self.buf);
            encode_relation(rel, &mut self.buf);
        }
        self.send_frame(K_DISPATCH)
    }

    /// Worker opened the fragment.
    pub fn send_started(&mut self, schema: &Schema) -> Result<u64> {
        self.buf.clear();
        encode_schema(schema, &mut self.buf);
        self.send_frame(K_STARTED)
    }

    /// One output batch, as a spill-codec frame.
    pub fn send_batch(&mut self, batch: &TupleBatch) -> Result<u64> {
        self.buf.clear();
        self.buf.reserve(codec::batch_frame_size_hint(batch));
        codec::encode_batch_frame(batch, &mut self.buf);
        self.send_frame(K_BATCH)
    }

    /// Credit refill.
    pub fn send_credit(&mut self, n: u32) -> Result<u64> {
        self.buf.clear();
        self.buf.extend_from_slice(&n.to_le_bytes());
        self.send_frame(K_CREDIT)
    }

    /// Shard completion.
    pub fn send_done(&mut self, stats: &ShardStats) -> Result<u64> {
        self.buf.clear();
        self.buf.extend_from_slice(&stats.rows.to_le_bytes());
        self.buf.extend_from_slice(&stats.batches.to_le_bytes());
        self.buf
            .extend_from_slice(&stats.backpressure_stalls.to_le_bytes());
        self.buf
            .extend_from_slice(&stats.spill_tuples.to_le_bytes());
        self.send_frame(K_DONE)
    }

    /// Shard failure.
    pub fn send_error(&mut self, e: &TukwilaError) -> Result<u64> {
        self.buf.clear();
        put_str(e.kind(), &mut self.buf);
        put_str(&e.to_string(), &mut self.buf);
        self.send_frame(K_ERROR)
    }

    /// Stop the shard.
    pub fn send_cancel(&mut self) -> Result<u64> {
        self.buf.clear();
        self.send_frame(K_CANCEL)
    }
}

// ---- reader --------------------------------------------------------------

/// Resumable frame reader: a read timeout mid-frame parks the partial
/// header/payload and [`FrameReader::read_frame`] returns `Ok(None)`; the
/// next call resumes exactly where the socket ran dry. EOF and transport
/// errors surface as [`TukwilaError::Io`].
pub struct FrameReader<R: Read> {
    r: R,
    header: [u8; 5],
    header_filled: usize,
    payload: Vec<u8>,
    payload_filled: usize,
    in_payload: bool,
    bytes_received: u64,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a read half.
    pub fn new(r: R) -> Self {
        FrameReader {
            r,
            header: [0; 5],
            header_filled: 0,
            payload: Vec::new(),
            payload_filled: 0,
            in_payload: false,
            bytes_received: 0,
        }
    }

    /// Total bytes consumed including frame headers.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Read one complete frame: `Ok(Some((kind, payload)))`, or `Ok(None)`
    /// if the underlying read timed out (call again after checking cancel
    /// flags).
    pub fn read_frame(&mut self) -> Result<Option<(u8, &[u8])>> {
        if !self.in_payload {
            while self.header_filled < 5 {
                match self.r.read(&mut self.header[self.header_filled..]) {
                    Ok(0) => return Err(closed("reading frame header")),
                    Ok(n) => self.header_filled += n,
                    Err(e) if is_timeout(&e) => return Ok(None),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(TukwilaError::Io(format!("net read: {e}"))),
                }
            }
            let len = u32::from_le_bytes([
                self.header[1],
                self.header[2],
                self.header[3],
                self.header[4],
            ]) as usize;
            if len > MAX_FRAME_LEN {
                return Err(TukwilaError::Io(format!(
                    "net: implausible frame length {len}"
                )));
            }
            self.payload.clear();
            self.payload.resize(len, 0);
            self.payload_filled = 0;
            self.in_payload = true;
        }
        while self.payload_filled < self.payload.len() {
            let fill = &mut self.payload[self.payload_filled..];
            match self.r.read(fill) {
                Ok(0) => return Err(closed("reading frame payload")),
                Ok(n) => self.payload_filled += n,
                Err(e) if is_timeout(&e) => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(TukwilaError::Io(format!("net read: {e}"))),
            }
        }
        self.in_payload = false;
        self.header_filled = 0;
        self.bytes_received += 5 + self.payload.len() as u64;
        Ok(Some((self.header[0], &self.payload)))
    }
}

/// Decode a frame into a [`Msg`]. `Hello` frames also validate the magic
/// word.
pub fn decode_msg(kind: u8, payload: &[u8]) -> Result<Msg> {
    let buf = payload;
    let mut pos = 0;
    let msg = match kind {
        K_HELLO => {
            let magic = get_u32(buf, &mut pos)?;
            if magic != NET_MAGIC {
                return Err(TukwilaError::Io(format!(
                    "net: bad handshake magic {magic:#x}"
                )));
            }
            Msg::Hello {
                version: get_u32(buf, &mut pos)?,
            }
        }
        K_HELLO_ACK => Msg::HelloAck {
            version: get_u32(buf, &mut pos)?,
        },
        K_DISPATCH => {
            let shard_index = get_u32(buf, &mut pos)?;
            let shard_count = get_u32(buf, &mut pos)?;
            let batch_size = get_u32(buf, &mut pos)?;
            let shard_budget = get_u64(buf, &mut pos)?;
            let deadline_ms = get_u64(buf, &mut pos)?;
            let initial_credits = get_u32(buf, &mut pos)?;
            let plan_text = get_str(buf, &mut pos)?;
            let ntables = get_u32(buf, &mut pos)? as usize;
            if ntables > 1 << 16 {
                return Err(TukwilaError::Io(format!(
                    "net codec: implausible table count {ntables}"
                )));
            }
            let mut tables = Vec::with_capacity(ntables);
            for _ in 0..ntables {
                let name = get_str(buf, &mut pos)?;
                let rel = decode_relation(buf, &mut pos)?;
                tables.push((name, Arc::new(rel)));
            }
            Msg::Dispatch(Box::new(Dispatch {
                shard_index,
                shard_count,
                batch_size,
                shard_budget,
                deadline: (deadline_ms != NO_DEADLINE).then(|| Duration::from_millis(deadline_ms)),
                initial_credits,
                plan_text,
                tables,
            }))
        }
        K_STARTED => Msg::Started {
            schema: decode_schema(buf, &mut pos)?,
        },
        K_BATCH => Msg::Batch(codec::decode_batch(buf, &mut pos)?),
        K_CREDIT => Msg::Credit {
            n: get_u32(buf, &mut pos)?,
        },
        K_DONE => Msg::Done(ShardStats {
            rows: get_u64(buf, &mut pos)?,
            batches: get_u64(buf, &mut pos)?,
            backpressure_stalls: get_u64(buf, &mut pos)?,
            spill_tuples: get_u64(buf, &mut pos)?,
        }),
        K_ERROR => Msg::Error {
            kind: get_str(buf, &mut pos)?,
            message: get_str(buf, &mut pos)?,
        },
        K_CANCEL => Msg::Cancel,
        other => return Err(TukwilaError::Io(format!("net: unknown frame kind {other}"))),
    };
    Ok(msg)
}

/// Rebuild a worker-reported error at the coordinator: cancellation and
/// deadline keep their variant (so service-level outcome classification
/// still works); everything else arrives as `Internal` tagged with the
/// worker's identity and the original kind.
pub fn error_from_wire(worker: &str, kind: &str, message: &str) -> TukwilaError {
    match kind {
        "cancelled" => TukwilaError::Cancelled(format!("worker {worker}: {message}")),
        "deadline_exceeded" => TukwilaError::DeadlineExceeded { elapsed_ms: 0 },
        _ => TukwilaError::Internal(format!("worker {worker} [{kind}]: {message}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use tukwila_common::{Tuple, Value};

    fn field(q: &str, n: &str, t: DataType) -> Field {
        Field::new(q, n, t)
    }

    fn sample_schema() -> Schema {
        Schema::new(vec![
            field("L", "k", DataType::Int),
            field("L", "name", DataType::Str),
            field("R", "score", DataType::Double),
            field("R", "when", DataType::Date),
        ])
    }

    /// Write frames into a buffer, then read them all back.
    fn roundtrip(write: impl FnOnce(&mut FrameWriter<&mut Vec<u8>>)) -> Vec<Msg> {
        let mut wire = Vec::new();
        let mut w = FrameWriter::new(&mut wire);
        write(&mut w);
        let sent = w.bytes_sent();
        assert_eq!(sent as usize, wire.len(), "bytes_sent must match the wire");
        let mut out = Vec::new();
        let mut r = FrameReader::new(Cursor::new(wire));
        loop {
            match r.read_frame() {
                Ok(Some((kind, payload))) => out.push(decode_msg(kind, payload).expect("decode")),
                Ok(None) => unreachable!("cursor reads never time out"),
                Err(_) => break, // EOF
            }
        }
        assert_eq!(r.bytes_received(), sent);
        out
    }

    #[test]
    fn control_frames_round_trip() {
        let stats = ShardStats {
            rows: 7,
            batches: 2,
            backpressure_stalls: 1,
            spill_tuples: 40,
        };
        let msgs = roundtrip(|w| {
            w.send_hello().expect("hello");
            w.send_hello_ack().expect("ack");
            w.send_credit(3).expect("credit");
            w.send_done(&stats).expect("done");
            w.send_error(&TukwilaError::Cancelled("stop".into()))
                .expect("error");
            w.send_cancel().expect("cancel");
        });
        assert_eq!(msgs.len(), 6);
        assert!(matches!(
            msgs[0],
            Msg::Hello {
                version: NET_VERSION
            }
        ));
        assert!(matches!(
            msgs[1],
            Msg::HelloAck {
                version: NET_VERSION
            }
        ));
        assert!(matches!(msgs[2], Msg::Credit { n: 3 }));
        match &msgs[3] {
            Msg::Done(s) => assert_eq!(*s, stats),
            other => panic!("expected Done, got {other:?}"),
        }
        match &msgs[4] {
            Msg::Error { kind, message } => {
                assert_eq!(kind, "cancelled");
                assert!(message.contains("stop"));
            }
            other => panic!("expected Error, got {other:?}"),
        }
        assert!(matches!(msgs[5], Msg::Cancel));
    }

    #[test]
    fn started_and_batch_round_trip() {
        let schema = sample_schema();
        let batch = TupleBatch::from_tuples(vec![
            Tuple::new(vec![
                Value::Int(1),
                Value::Str("a".into()),
                Value::Double(0.5),
                Value::Date(11111),
            ]),
            Tuple::new(vec![
                Value::Null,
                Value::Str("".into()),
                Value::Null,
                Value::Date(0),
            ]),
        ]);
        let msgs = roundtrip(|w| {
            w.send_started(&schema).expect("started");
            w.send_batch(&batch).expect("batch");
        });
        match &msgs[0] {
            Msg::Started { schema: s } => assert_eq!(*s, schema),
            other => panic!("expected Started, got {other:?}"),
        }
        match &msgs[1] {
            Msg::Batch(b) => assert_eq!(b.tuples(), batch.tuples()),
            other => panic!("expected Batch, got {other:?}"),
        }
    }

    #[test]
    fn dispatch_round_trips_with_tables() {
        let schema = sample_schema();
        let rel = Relation::new(
            schema,
            vec![Tuple::new(vec![
                Value::Int(9),
                Value::Str("x".into()),
                Value::Double(2.0),
                Value::Date(77),
            ])],
        )
        .expect("relation");
        let d = Dispatch {
            shard_index: 1,
            shard_count: 4,
            batch_size: 512,
            shard_budget: 1 << 20,
            deadline: Some(Duration::from_millis(1_500)),
            initial_credits: CREDIT_WINDOW,
            plan_text: "(fragment f0 (wrapper L))\n(output f0)".into(),
            tables: vec![("t".into(), Arc::new(rel.clone()))],
        };
        let msgs = roundtrip(|w| {
            w.send_dispatch(&d).expect("dispatch");
        });
        match &msgs[0] {
            Msg::Dispatch(back) => {
                assert_eq!(back.shard_index, d.shard_index);
                assert_eq!(back.shard_count, d.shard_count);
                assert_eq!(back.batch_size, d.batch_size);
                assert_eq!(back.shard_budget, d.shard_budget);
                assert_eq!(back.deadline, d.deadline);
                assert_eq!(back.initial_credits, d.initial_credits);
                assert_eq!(back.plan_text, d.plan_text);
                assert_eq!(back.tables.len(), 1);
                assert_eq!(back.tables[0].0, "t");
                assert_eq!(back.tables[0].1.tuples(), rel.tuples());
            }
            other => panic!("expected Dispatch, got {other:?}"),
        }
    }

    #[test]
    fn empty_relation_round_trips() {
        let rel = Relation::empty(sample_schema());
        let d = Dispatch {
            shard_index: 0,
            shard_count: 1,
            batch_size: 64,
            shard_budget: 0,
            deadline: None,
            initial_credits: 1,
            plan_text: String::new(),
            tables: vec![("empty".into(), Arc::new(rel))],
        };
        let msgs = roundtrip(|w| {
            w.send_dispatch(&d).expect("dispatch");
        });
        match &msgs[0] {
            Msg::Dispatch(back) => {
                assert!(back.deadline.is_none());
                assert!(back.tables[0].1.is_empty());
            }
            other => panic!("expected Dispatch, got {other:?}"),
        }
    }

    /// A reader fed one byte at a time — with reads that "time out" in
    /// between — must reassemble frames without corruption.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        starve: bool,
    }

    impl std::io::Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            self.starve = !self.starve;
            if self.starve {
                return Err(std::io::Error::from(std::io::ErrorKind::WouldBlock));
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn reader_resumes_across_timeouts_mid_frame() {
        let mut wire = Vec::new();
        let mut w = FrameWriter::new(&mut wire);
        w.send_credit(41).expect("credit");
        w.send_hello().expect("hello");
        let mut r = FrameReader::new(Trickle {
            data: wire,
            pos: 0,
            starve: false,
        });
        let mut got = Vec::new();
        loop {
            match r.read_frame() {
                Ok(Some((kind, payload))) => got.push(decode_msg(kind, payload).expect("decode")),
                Ok(None) => continue, // simulated timeout, possibly mid-frame
                Err(_) => break,      // EOF
            }
        }
        assert!(matches!(got[0], Msg::Credit { n: 41 }));
        assert!(matches!(
            got[1],
            Msg::Hello {
                version: NET_VERSION
            }
        ));
    }

    #[test]
    fn oversized_and_unknown_frames_are_rejected() {
        // Unknown kind.
        assert!(decode_msg(200, &[]).is_err());
        // Bad magic.
        let mut bad = Vec::new();
        bad.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        bad.extend_from_slice(&NET_VERSION.to_le_bytes());
        assert!(decode_msg(1, &bad).is_err());
        // Implausible frame length in the header.
        let mut header = vec![5u8];
        header.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = FrameReader::new(Cursor::new(header));
        assert!(r.read_frame().is_err());
    }
}
