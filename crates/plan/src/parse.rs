//! Parser for the human-writable plan format.
//!
//! The paper's engine "accepts plans which are specified in an XML-based
//! query plan language which is human-writable" (§5) — the experiments of
//! §6.2–§6.3 used hand-coded plans. This module provides that capability
//! for the reproduction: a compact s-expression format covering scans,
//! joins (all physical kinds and overflow methods), selections,
//! projections, unions, collectors, fragments, and dependencies.
//!
//! Grammar (whitespace-insensitive; `;` comments to end of line):
//!
//! ```text
//! plan      := fragment* "(output" IDENT ")"
//! fragment  := "(fragment" IDENT ["contingent"] node ")"
//! node      := scan | wrapper | join | select | project | union | collector
//! scan      := "(scan" IDENT ")"                       ; local table
//! wrapper   := "(wrapper" IDENT [timeout] ")"          ; remote source
//! timeout   := ":timeout" INT                          ; milliseconds
//! join      := "(join" KIND key "=" key [":mem" INT] [":overflow" METHOD]
//!              node node ")"
//! KIND      := "dpj" | "hybrid" | "grace" | "nlj" | "smj"
//! METHOD    := "left" | "symmetric" | "flushall" | "fail"
//! select    := "(select" column OP literal node ")"
//! project   := "(project" "[" column ("," column)* "]" node ")"
//! union     := "(union" node node+ ")"
//! collector := "(collector" [":quota" INT] [":timeout" INT]
//!              ("(child" IDENT ["standby"] ")")+ ")"
//! depends   := "(after" IDENT IDENT ")"                ; frag1 before frag2
//! ```
//!
//! Example:
//!
//! ```
//! use tukwila_plan::parse::parse_plan;
//! let plan = parse_plan(r#"
//!     (fragment f0 (join dpj l_suppkey = s_suppkey :mem 65536
//!         (wrapper lineitem)
//!         (wrapper supplier)))
//!     (output f0)
//! "#).unwrap();
//! assert_eq!(plan.fragments.len(), 1);
//! ```

use tukwila_common::{Result, TukwilaError, Value};

use crate::builder::PlanBuilder;
use crate::ids::FragmentId;
use crate::ops::{JoinKind, OperatorNode, OverflowMethod};
use crate::plan::QueryPlan;
use crate::predicate::{CmpOp, Predicate};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open,
    Close,
    OpenBracket,
    CloseBracket,
    Comma,
    Eq,
    Word(String),
}

fn err(msg: impl Into<String>) -> TukwilaError {
    TukwilaError::Plan(format!("plan parse error: {}", msg.into()))
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::Open);
            }
            ')' => {
                chars.next();
                out.push(Token::Close);
            }
            '[' => {
                chars.next();
                out.push(Token::OpenBracket);
            }
            ']' => {
                chars.next();
                out.push(Token::CloseBracket);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(c) => s.push(c),
                        None => return Err(err("unterminated string literal")),
                    }
                }
                out.push(Token::Word(format!("\"{s}")));
            }
            _ => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || "()[],=;\"".contains(c) {
                        break;
                    }
                    w.push(c);
                    chars.next();
                }
                out.push(Token::Word(w));
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    builder: PlanBuilder,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<&Token> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        let got = self.next()?;
        if *got == t {
            Ok(())
        } else {
            Err(err(format!("expected {t:?}, got {got:?}")))
        }
    }

    fn word(&mut self) -> Result<String> {
        match self.next()? {
            Token::Word(w) => Ok(w.clone()),
            other => Err(err(format!("expected word, got {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<u64> {
        let w = self.word()?;
        w.parse()
            .map_err(|_| err(format!("expected integer, got `{w}`")))
    }

    /// Optional `:key value` option; returns true if consumed.
    fn try_option(&mut self, key: &str) -> bool {
        if let Some(Token::Word(w)) = self.peek() {
            if w == key {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn node(&mut self) -> Result<OperatorNode> {
        self.expect(Token::Open)?;
        let head = self.word()?;
        let node = match head.as_str() {
            "scan" => {
                let table = self.word()?;
                self.builder.table_scan(&table)
            }
            "wrapper" => {
                let source = self.word()?;
                let timeout = if self.try_option(":timeout") {
                    Some(self.int()?)
                } else {
                    None
                };
                let prefetch = if self.try_option(":prefetch") {
                    Some(self.int()? as usize)
                } else {
                    None
                };
                self.builder.wrapper_scan_opts(&source, timeout, prefetch)
            }
            "join" => {
                let kind = match self.word()?.as_str() {
                    "dpj" => JoinKind::DoublePipelined,
                    "hybrid" => JoinKind::HybridHash,
                    "grace" => JoinKind::GraceHash,
                    "nlj" => JoinKind::NestedLoops,
                    "smj" => JoinKind::SortMerge,
                    other => return Err(err(format!("unknown join kind `{other}`"))),
                };
                let lk = self.word()?;
                self.expect(Token::Eq)?;
                let rk = self.word()?;
                let mem = if self.try_option(":mem") {
                    Some(self.int()? as usize)
                } else {
                    None
                };
                let overflow = if self.try_option(":overflow") {
                    Some(match self.word()?.as_str() {
                        "left" => OverflowMethod::IncrementalLeftFlush,
                        "symmetric" => OverflowMethod::IncrementalSymmetricFlush,
                        "flushall" => OverflowMethod::FlushAllLeft,
                        "fail" => OverflowMethod::Fail,
                        other => return Err(err(format!("unknown overflow method `{other}`"))),
                    })
                } else {
                    None
                };
                let left = self.node()?;
                let right = self.node()?;
                let mut n = match overflow {
                    Some(m) if kind == JoinKind::DoublePipelined => {
                        self.builder.dpj(left, right, &lk, &rk, m)
                    }
                    _ => self.builder.join(kind, left, right, &lk, &rk),
                };
                if let Some(m) = mem {
                    n.memory_budget = Some(m);
                }
                n
            }
            "select" => {
                let col = self.word()?;
                // `=` is its own token, so `<=` / `>=` arrive as a word
                // followed by an Eq token.
                let op = match self.next()?.clone() {
                    Token::Eq => CmpOp::Eq,
                    Token::Word(w) => match w.as_str() {
                        "<" | ">" => {
                            let gt = w == ">";
                            if self.peek() == Some(&Token::Eq) {
                                self.pos += 1;
                                if gt {
                                    CmpOp::Ge
                                } else {
                                    CmpOp::Le
                                }
                            } else if gt {
                                CmpOp::Gt
                            } else {
                                CmpOp::Lt
                            }
                        }
                        "<>" => CmpOp::Ne,
                        other => return Err(err(format!("unknown comparator `{other}`"))),
                    },
                    other => return Err(err(format!("expected comparator, got {other:?}"))),
                };
                let lit_word = self.word()?;
                let value = if let Some(stripped) = lit_word.strip_prefix('"') {
                    Value::str(stripped)
                } else if let Ok(i) = lit_word.parse::<i64>() {
                    Value::Int(i)
                } else if let Ok(f) = lit_word.parse::<f64>() {
                    Value::Double(f)
                } else {
                    Value::str(&lit_word)
                };
                let input = self.node()?;
                self.builder
                    .select(input, Predicate::ColLit { col, op, value })
            }
            "project" => {
                self.expect(Token::OpenBracket)?;
                let mut cols = vec![self.word()?];
                while self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                    cols.push(self.word()?);
                }
                self.expect(Token::CloseBracket)?;
                let input = self.node()?;
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                self.builder.project(input, &refs)
            }
            "union" => {
                let mut inputs = Vec::new();
                while self.peek() == Some(&Token::Open) {
                    inputs.push(self.node()?);
                }
                if inputs.len() < 2 {
                    return Err(err("union needs at least two inputs"));
                }
                self.builder.union(inputs)
            }
            "exchange" => {
                let partitions = self.int()? as usize;
                if partitions == 0 {
                    return Err(err("exchange needs at least one partition"));
                }
                let input = self.node()?;
                self.builder.exchange(input, partitions)
            }
            "collector" => {
                let quota = if self.try_option(":quota") {
                    Some(self.int()? as usize)
                } else {
                    None
                };
                let timeout = if self.try_option(":timeout") {
                    Some(self.int()?)
                } else {
                    None
                };
                let mut children = Vec::new();
                while self.peek() == Some(&Token::Open) {
                    self.expect(Token::Open)?;
                    let kw = self.word()?;
                    if kw != "child" {
                        return Err(err(format!("expected (child …), got `{kw}`")));
                    }
                    let source = self.word()?;
                    let standby = if let Some(Token::Word(w)) = self.peek() {
                        if w == "standby" {
                            self.pos += 1;
                            true
                        } else {
                            false
                        }
                    } else {
                        false
                    };
                    self.expect(Token::Close)?;
                    children.push((source, !standby));
                }
                if children.is_empty() {
                    return Err(err("collector needs at least one child"));
                }
                let specs: Vec<(&str, bool)> =
                    children.iter().map(|(s, a)| (s.as_str(), *a)).collect();
                let (node, _) = self.builder.collector_with_timeout(&specs, quota, timeout);
                node
            }
            other => return Err(err(format!("unknown operator `{other}`"))),
        };
        self.expect(Token::Close)?;
        Ok(node)
    }
}

/// Parse a textual plan. Fragment names map to ids in order of appearance;
/// the `(output …)` clause selects the answer fragment. The parsed plan is
/// validated with [`crate::validate::validate_plan`].
pub fn parse_plan(input: &str) -> Result<QueryPlan> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        builder: PlanBuilder::new(),
    };
    let mut names: Vec<(String, FragmentId)> = Vec::new();
    let mut contingent: Vec<FragmentId> = Vec::new();
    let mut deps: Vec<(String, String)> = Vec::new();
    let mut output: Option<String> = None;

    while p.peek().is_some() {
        p.expect(Token::Open)?;
        match p.word()?.as_str() {
            "fragment" => {
                let name = p.word()?;
                let is_contingent = if let Some(Token::Word(w)) = p.peek() {
                    if w == "contingent" {
                        p.pos += 1;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                let node = p.node()?;
                let mat_name = format!("mat_{name}");
                let id = p.builder.fragment(node, &mat_name);
                if is_contingent {
                    contingent.push(id);
                }
                if names.iter().any(|(n, _)| n == &name) {
                    return Err(err(format!("duplicate fragment name `{name}`")));
                }
                names.push((name, id));
            }
            "after" => {
                let before = p.word()?;
                let after = p.word()?;
                deps.push((before, after));
            }
            "output" => {
                output = Some(p.word()?);
            }
            other => return Err(err(format!("unknown top-level form `{other}`"))),
        }
        p.expect(Token::Close)?;
    }

    let lookup = |name: &str, names: &[(String, FragmentId)]| {
        names
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
            .ok_or_else(|| err(format!("unknown fragment `{name}`")))
    };
    for (before, after) in &deps {
        let b = lookup(before, &names)?;
        let a = lookup(after, &names)?;
        p.builder.depends(b, a);
    }
    let output_name = output.ok_or_else(|| err("missing (output <fragment>)"))?;
    let out_id = lookup(&output_name, &names)?;
    let mut plan = p.builder.build(out_id);
    // rename the output fragment's materialization to the conventional name
    if let Some(f) = plan.fragments.iter_mut().find(|f| f.id == out_id) {
        f.materialize_as = "result".into();
    }
    for id in contingent {
        if let Some(f) = plan.fragments.iter_mut().find(|f| f.id == id) {
            f.initially_active = false;
        }
    }
    crate::validate::validate_plan(&plan)?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OperatorSpec;

    #[test]
    fn parses_two_fragment_plan_with_dependency() {
        let plan = parse_plan(
            r#"
            ; fragment one: remote join with a memory budget
            (fragment f0 (join dpj k = k :mem 4096 :overflow symmetric
                (wrapper A :timeout 100)
                (wrapper B)))
            (fragment f1 (join hybrid a.k = c.k
                (scan mat_f0)
                (wrapper C)))
            (after f0 f1)
            (output f1)
            "#,
        )
        .unwrap();
        assert_eq!(plan.fragments.len(), 2);
        assert_eq!(plan.dependencies.len(), 1);
        assert_eq!(plan.fragment(plan.output).unwrap().materialize_as, "result");
        let f0 = &plan.fragments[0];
        assert_eq!(f0.materialize_as, "mat_f0");
        match &f0.root.spec {
            OperatorSpec::Join { kind, overflow, .. } => {
                assert_eq!(*kind, JoinKind::DoublePipelined);
                assert_eq!(*overflow, OverflowMethod::IncrementalSymmetricFlush);
            }
            other => panic!("expected join, got {other:?}"),
        }
        assert_eq!(f0.root.memory_budget, Some(4096));
    }

    #[test]
    fn parses_exchange_wrapped_join() {
        let plan = parse_plan(
            r#"
            (fragment f (exchange 4 (join dpj k = k
                (wrapper L)
                (wrapper R))))
            (output f)
            "#,
        )
        .unwrap();
        match &plan.fragments[0].root.spec {
            OperatorSpec::Exchange { input, partitions } => {
                assert_eq!(*partitions, 4);
                assert!(matches!(input.spec, OperatorSpec::Join { .. }));
            }
            other => panic!("expected exchange, got {other:?}"),
        }
        assert_eq!(plan.fragments[0].root.label(), "exchange(x4)");
    }

    #[test]
    fn parses_select_project_union() {
        let plan = parse_plan(
            r#"
            (fragment f (project [a, b]
                (select a >= 10
                    (union (wrapper X) (wrapper Y)))))
            (output f)
            "#,
        )
        .unwrap();
        let root = &plan.fragments[0].root;
        assert!(matches!(root.spec, OperatorSpec::Project { .. }));
    }

    #[test]
    fn parses_collector_with_policy_knobs() {
        let plan = parse_plan(
            r#"
            (fragment f (collector :quota 500 :timeout 80
                (child mirror1)
                (child mirror2 standby)))
            (output f)
            "#,
        )
        .unwrap();
        match &plan.fragments[0].root.spec {
            OperatorSpec::Collector {
                children,
                quota,
                child_timeout_ms,
            } => {
                assert_eq!(children.len(), 2);
                assert!(children[0].initially_active);
                assert!(!children[1].initially_active);
                assert_eq!(*quota, Some(500));
                assert_eq!(*child_timeout_ms, Some(80));
            }
            other => panic!("expected collector, got {other:?}"),
        }
    }

    #[test]
    fn contingent_fragments_parse() {
        let plan = parse_plan(
            r#"
            (fragment main (wrapper A))
            (fragment alt contingent (wrapper B))
            (after main alt)
            (output main)
            "#,
        )
        .unwrap();
        assert!(!plan.fragments[1].initially_active);
    }

    #[test]
    fn select_string_literal() {
        let plan =
            parse_plan(r#"(fragment f (select name = "FRANCE" (wrapper nation))) (output f)"#)
                .unwrap();
        match &plan.fragments[0].root.spec {
            OperatorSpec::Select { predicate, .. } => match predicate {
                Predicate::ColLit { value, .. } => {
                    assert_eq!(value, &Value::str("FRANCE"));
                }
                other => panic!("unexpected predicate {other:?}"),
            },
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_descriptive() {
        for (input, needle) in [
            ("(fragment f (wrapper A))", "missing (output"),
            (
                "(fragment f (join bad k = k (wrapper A) (wrapper B))) (output f)",
                "join kind",
            ),
            ("(output ghost)", "unknown fragment"),
            (
                "(fragment f (union (wrapper A))) (output f)",
                "at least two",
            ),
            (
                "(fragment f (wrapper A)) (fragment f (wrapper B)) (output f)",
                "duplicate",
            ),
        ] {
            let e = parse_plan(input).unwrap_err().to_string();
            assert!(e.contains(needle), "input `{input}`: {e}");
        }
    }

    #[test]
    fn round_trip_with_renderer() {
        // parse → render → contains the key structure
        let plan = parse_plan(
            r#"
            (fragment f0 (join dpj k = k (wrapper A) (wrapper B)))
            (output f0)
            "#,
        )
        .unwrap();
        let text = crate::text::render_plan(&plan);
        assert!(text.contains("wrapper(A)"));
        assert!(text.contains("DoublePipelined"));
    }
}
