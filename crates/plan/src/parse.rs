//! Parser for the human-writable plan format.
//!
//! The paper's engine "accepts plans which are specified in an XML-based
//! query plan language which is human-writable" (§5) — the experiments of
//! §6.2–§6.3 used hand-coded plans. This module provides that capability
//! for the reproduction: a compact s-expression format covering scans,
//! joins (all physical kinds and overflow methods), selections,
//! projections, unions, exchanges, collectors, fragments, dependencies and
//! ECA rules. [`crate::text::print_plan`] emits the same grammar, so plans
//! round-trip (parse → print → parse is a fixpoint).
//!
//! Grammar (whitespace-insensitive; `;` comments to end of line):
//!
//! ```text
//! plan      := (fragment | after | rule)* "(output" IDENT ")"
//! fragment  := "(fragment" IDENT ["contingent"] node rule* ")"
//! node      := scan | wrapper | join | depjoin | select | project | union
//!            | exchange | collector
//! scan      := "(scan" IDENT ")"                       ; local table
//! wrapper   := "(wrapper" IDENT [timeout] [":prefetch" INT] ")"
//! timeout   := ":timeout" INT                          ; milliseconds
//! join      := "(join" KIND key "=" key [":mem" INT] [":overflow" METHOD]
//!              node node ")"
//! KIND      := "dpj" | "hybrid" | "grace" | "nlj" | "smj"
//! METHOD    := "left" | "symmetric" | "flushall" | "fail"
//! depjoin   := "(depjoin" IDENT column "=" column node ")"
//! select    := "(select" (column OP literal | pred) node ")"
//! pred      := "true" | "(lit" column OP literal ")" | "(cols" column OP column ")"
//!            | "(and" pred+ ")" | "(or" pred+ ")" | "(not" pred ")"
//! project   := "(project" "[" column ("," column)* "]" node ")"
//! union     := "(union" node node+ ")"
//! exchange  := "(exchange" INT node ")"
//! collector := "(collector" [":quota" INT] [":timeout" INT]
//!              ("(child" IDENT ["standby"] ")")+ ")"
//! after     := "(after" IDENT IDENT ")"                ; frag1 before frag2
//! rule      := "(rule" NAME ":owner" SUBJ ":when" EVENT SUBJ [INT]
//!              [":if" cond] [":do" action*] ")"
//! EVENT     := "opened" | "closed" | "error" | "timeout" | "oom" | "threshold"
//! SUBJ      := "op" INT | IDENT        ; `opN` wins over a fragment named opN
//! cond      := "true" | "false" | "(state" SUBJ STATE ")"
//!            | "(cmp" qty OP qty ")" | "(and" cond+ ")" | "(or" cond+ ")"
//!            | "(not" cond ")"
//! STATE     := "notstarted" | "open" | "closed" | "failed" | "deactivated"
//! qty       := NUMBER | "(card" SUBJ ")" | "(est" SUBJ ")" | "(wait" SUBJ ")"
//!            | "(mem" SUBJ ")" | "(budget" SUBJ ")" | "(scale" NUMBER qty ")"
//! action    := "replan" | "reschedule" | "(activate" SUBJ ")"
//!            | "(deactivate" SUBJ ")" | "(error" STRING ")"
//!            | "(set-overflow" "op" INT METHOD ")"
//!            | "(alter-memory" "op" INT INT ")"
//! ```
//!
//! Rule subjects may reference fragments by name (forward references are
//! fine — resolution happens after the whole input is read) and operators
//! as `opN` using the ids the parser assigns: operators number from 0 in
//! post-order within each fragment, fragments in order of appearance.
//!
//! Example:
//!
//! ```
//! use tukwila_plan::parse::parse_plan;
//! let plan = parse_plan(r#"
//!     (fragment f0 (join dpj l_suppkey = s_suppkey :mem 65536
//!         (wrapper lineitem)
//!         (wrapper supplier)))
//!     (output f0)
//! "#).unwrap();
//! assert_eq!(plan.fragments.len(), 1);
//! ```

use tukwila_common::{Result, TukwilaError, Value};

use crate::builder::PlanBuilder;
use crate::ids::{FragmentId, OpId};
use crate::ops::{JoinKind, OperatorNode, OverflowMethod};
use crate::plan::QueryPlan;
use crate::predicate::{CmpOp, Predicate};
use crate::rules::{
    Action, Condition, EventKind, EventPattern, OpState, Quantity, Rule, SubjectRef,
};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open,
    Close,
    OpenBracket,
    CloseBracket,
    Comma,
    Eq,
    Word(String),
}

fn err(msg: impl Into<String>) -> TukwilaError {
    TukwilaError::Plan(format!("plan parse error: {}", msg.into()))
}

fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::Open);
            }
            ')' => {
                chars.next();
                out.push(Token::Close);
            }
            '[' => {
                chars.next();
                out.push(Token::OpenBracket);
            }
            ']' => {
                chars.next();
                out.push(Token::CloseBracket);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some(c) => s.push(c),
                        None => return Err(err("unterminated string literal")),
                    }
                }
                out.push(Token::Word(format!("\"{s}")));
            }
            _ => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || "()[],=;\"".contains(c) {
                        break;
                    }
                    w.push(c);
                    chars.next();
                }
                out.push(Token::Word(w));
            }
        }
    }
    Ok(out)
}

// ---- rule clause AST (subjects are unresolved words until the whole ----
// ---- input is read, so forward fragment references work)            ----

#[derive(Debug)]
struct RuleAst {
    name: String,
    owner: String,
    kind: EventKind,
    subject: String,
    value: Option<u64>,
    condition: CondAst,
    actions: Vec<ActionAst>,
}

#[derive(Debug)]
enum CondAst {
    True,
    False,
    State(String, OpState),
    Cmp(QtyAst, CmpOp, QtyAst),
    And(Vec<CondAst>),
    Or(Vec<CondAst>),
    Not(Box<CondAst>),
}

#[derive(Debug)]
enum QtyAst {
    Const(f64),
    Card(String),
    Est(String),
    Wait(String),
    Mem(String),
    Budget(String),
    Scale(f64, Box<QtyAst>),
}

#[derive(Debug)]
enum ActionAst {
    Replan,
    Reschedule,
    Activate(String),
    Deactivate(String),
    Error(String),
    SetOverflow(String, OverflowMethod),
    AlterMemory(String, usize),
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
    builder: PlanBuilder,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<&Token> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: Token) -> Result<()> {
        let got = self.next()?;
        if *got == t {
            Ok(())
        } else {
            Err(err(format!("expected {t:?}, got {got:?}")))
        }
    }

    fn word(&mut self) -> Result<String> {
        match self.next()? {
            Token::Word(w) => Ok(w.clone()),
            other => Err(err(format!("expected word, got {other:?}"))),
        }
    }

    /// A word with an optional surrounding-quote marker stripped.
    fn name_word(&mut self) -> Result<String> {
        let w = self.word()?;
        Ok(w.strip_prefix('"').map(str::to_string).unwrap_or(w))
    }

    fn int(&mut self) -> Result<u64> {
        let w = self.word()?;
        w.parse()
            .map_err(|_| err(format!("expected integer, got `{w}`")))
    }

    fn number(&mut self) -> Result<f64> {
        let w = self.word()?;
        w.parse()
            .map_err(|_| err(format!("expected number, got `{w}`")))
    }

    /// Optional `:key value` option; returns true if consumed.
    fn try_option(&mut self, key: &str) -> bool {
        if let Some(Token::Word(w)) = self.peek() {
            if w == key {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, key: &str) -> Result<()> {
        if self.try_option(key) {
            Ok(())
        } else {
            Err(err(format!("expected `{key}`, got {:?}", self.peek())))
        }
    }

    /// Comparator: `=` is its own token, so `<=` / `>=` arrive as a word
    /// followed by an Eq token.
    fn comparator(&mut self) -> Result<CmpOp> {
        match self.next()?.clone() {
            Token::Eq => Ok(CmpOp::Eq),
            Token::Word(w) => match w.as_str() {
                "<" | ">" => {
                    let gt = w == ">";
                    if self.peek() == Some(&Token::Eq) {
                        self.pos += 1;
                        Ok(if gt { CmpOp::Ge } else { CmpOp::Le })
                    } else if gt {
                        Ok(CmpOp::Gt)
                    } else {
                        Ok(CmpOp::Lt)
                    }
                }
                "<>" => Ok(CmpOp::Ne),
                other => Err(err(format!("unknown comparator `{other}`"))),
            },
            other => Err(err(format!("expected comparator, got {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value> {
        let w = self.word()?;
        Ok(if let Some(stripped) = w.strip_prefix('"') {
            Value::str(stripped)
        } else if w == "null" {
            Value::Null
        } else if let Some(d) = w.strip_prefix("date:") {
            Value::Date(
                d.parse()
                    .map_err(|_| err(format!("bad date literal `{w}`")))?,
            )
        } else if let Ok(i) = w.parse::<i64>() {
            Value::Int(i)
        } else if let Ok(f) = w.parse::<f64>() {
            Value::Double(f)
        } else {
            Value::str(&w)
        })
    }

    fn overflow_method(&mut self) -> Result<OverflowMethod> {
        Ok(match self.word()?.as_str() {
            "left" => OverflowMethod::IncrementalLeftFlush,
            "symmetric" => OverflowMethod::IncrementalSymmetricFlush,
            "flushall" => OverflowMethod::FlushAllLeft,
            "fail" => OverflowMethod::Fail,
            other => return Err(err(format!("unknown overflow method `{other}`"))),
        })
    }

    /// Parenthesized predicate form (`(and …)`, `(lit …)`, `(cols …)`).
    fn pred_sexpr(&mut self) -> Result<Predicate> {
        self.expect(Token::Open)?;
        let head = self.word()?;
        let p = match head.as_str() {
            "lit" => {
                let col = self.word()?;
                let op = self.comparator()?;
                let value = self.literal()?;
                Predicate::ColLit { col, op, value }
            }
            "cols" => {
                let left = self.word()?;
                let op = self.comparator()?;
                let right = self.word()?;
                Predicate::ColCol { left, op, right }
            }
            "and" | "or" => {
                let mut ps = Vec::new();
                while self.peek() != Some(&Token::Close) {
                    ps.push(self.pred()?);
                }
                if head == "and" {
                    Predicate::And(ps)
                } else {
                    Predicate::Or(ps)
                }
            }
            "not" => Predicate::Not(Box::new(self.pred()?)),
            other => return Err(err(format!("unknown predicate form `{other}`"))),
        };
        self.expect(Token::Close)?;
        Ok(p)
    }

    fn pred(&mut self) -> Result<Predicate> {
        if self.peek() == Some(&Token::Open) {
            self.pred_sexpr()
        } else {
            match self.word()?.as_str() {
                "true" => Ok(Predicate::True),
                other => Err(err(format!("unknown predicate `{other}`"))),
            }
        }
    }

    fn node(&mut self) -> Result<OperatorNode> {
        self.expect(Token::Open)?;
        let head = self.word()?;
        let node = match head.as_str() {
            "scan" => {
                let table = self.word()?;
                self.builder.table_scan(&table)
            }
            "wrapper" => {
                let source = self.word()?;
                let timeout = if self.try_option(":timeout") {
                    Some(self.int()?)
                } else {
                    None
                };
                let prefetch = if self.try_option(":prefetch") {
                    Some(self.int()? as usize)
                } else {
                    None
                };
                self.builder.wrapper_scan_opts(&source, timeout, prefetch)
            }
            "join" => {
                let kind = match self.word()?.as_str() {
                    "dpj" => JoinKind::DoublePipelined,
                    "hybrid" => JoinKind::HybridHash,
                    "grace" => JoinKind::GraceHash,
                    "nlj" => JoinKind::NestedLoops,
                    "smj" => JoinKind::SortMerge,
                    other => return Err(err(format!("unknown join kind `{other}`"))),
                };
                let lk = self.word()?;
                self.expect(Token::Eq)?;
                let rk = self.word()?;
                let mem = if self.try_option(":mem") {
                    Some(self.int()? as usize)
                } else {
                    None
                };
                let overflow = if self.try_option(":overflow") {
                    Some(self.overflow_method()?)
                } else {
                    None
                };
                let left = self.node()?;
                let right = self.node()?;
                let mut n = match overflow {
                    Some(m) if kind == JoinKind::DoublePipelined => {
                        self.builder.dpj(left, right, &lk, &rk, m)
                    }
                    _ => self.builder.join(kind, left, right, &lk, &rk),
                };
                if let Some(m) = mem {
                    n.memory_budget = Some(m);
                }
                n
            }
            "depjoin" => {
                let source = self.word()?;
                let bind = self.word()?;
                self.expect(Token::Eq)?;
                let probe = self.word()?;
                let left = self.node()?;
                self.builder.dependent_join(left, &source, &bind, &probe)
            }
            "select" => {
                // New-style parenthesized predicate, bare `true`, or the
                // legacy `column OP literal` shorthand.
                let predicate = if self.peek() == Some(&Token::Open) {
                    self.pred_sexpr()?
                } else {
                    let col = self.word()?;
                    if col == "true" && self.peek() == Some(&Token::Open) {
                        Predicate::True
                    } else {
                        let op = self.comparator()?;
                        let value = self.literal()?;
                        Predicate::ColLit { col, op, value }
                    }
                };
                let input = self.node()?;
                self.builder.select(input, predicate)
            }
            "project" => {
                self.expect(Token::OpenBracket)?;
                let mut cols = vec![self.word()?];
                while self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                    cols.push(self.word()?);
                }
                self.expect(Token::CloseBracket)?;
                let input = self.node()?;
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                self.builder.project(input, &refs)
            }
            "union" => {
                let mut inputs = Vec::new();
                while self.peek() == Some(&Token::Open) {
                    inputs.push(self.node()?);
                }
                if inputs.len() < 2 {
                    return Err(err("union needs at least two inputs"));
                }
                self.builder.union(inputs)
            }
            "exchange" => {
                let partitions = self.int()? as usize;
                if partitions == 0 {
                    return Err(err("exchange needs at least one partition"));
                }
                let input = self.node()?;
                self.builder.exchange(input, partitions)
            }
            "collector" => {
                let quota = if self.try_option(":quota") {
                    Some(self.int()? as usize)
                } else {
                    None
                };
                let timeout = if self.try_option(":timeout") {
                    Some(self.int()?)
                } else {
                    None
                };
                let mut children = Vec::new();
                while self.peek() == Some(&Token::Open) {
                    self.expect(Token::Open)?;
                    let kw = self.word()?;
                    if kw != "child" {
                        return Err(err(format!("expected (child …), got `{kw}`")));
                    }
                    let source = self.word()?;
                    let standby = if let Some(Token::Word(w)) = self.peek() {
                        if w == "standby" {
                            self.pos += 1;
                            true
                        } else {
                            false
                        }
                    } else {
                        false
                    };
                    self.expect(Token::Close)?;
                    children.push((source, !standby));
                }
                if children.is_empty() {
                    return Err(err("collector needs at least one child"));
                }
                let specs: Vec<(&str, bool)> =
                    children.iter().map(|(s, a)| (s.as_str(), *a)).collect();
                let (node, _) = self.builder.collector_with_timeout(&specs, quota, timeout);
                node
            }
            other => return Err(err(format!("unknown operator `{other}`"))),
        };
        self.expect(Token::Close)?;
        Ok(node)
    }

    // ---- rule clauses ----

    /// Body of a `(rule …)` form; the opening paren and `rule` head are
    /// already consumed, the closing paren is left for the caller.
    fn rule_body(&mut self) -> Result<RuleAst> {
        let name = self.name_word()?;
        self.expect_keyword(":owner")?;
        let owner = self.word()?;
        self.expect_keyword(":when")?;
        let kind = match self.word()?.as_str() {
            "opened" => EventKind::Opened,
            "closed" => EventKind::Closed,
            "error" => EventKind::Error,
            "timeout" => EventKind::Timeout,
            "oom" => EventKind::OutOfMemory,
            "threshold" => EventKind::Threshold,
            other => return Err(err(format!("unknown event kind `{other}`"))),
        };
        let subject = self.word()?;
        let value = match self.peek() {
            Some(Token::Word(w)) => w.parse::<u64>().ok(),
            _ => None,
        };
        if value.is_some() {
            self.pos += 1;
        }
        let condition = if self.try_option(":if") {
            self.cond()?
        } else {
            CondAst::True
        };
        let mut actions = Vec::new();
        if self.try_option(":do") {
            while self.peek() != Some(&Token::Close) {
                actions.push(self.action()?);
            }
        }
        Ok(RuleAst {
            name,
            owner,
            kind,
            subject,
            value,
            condition,
            actions,
        })
    }

    fn cond(&mut self) -> Result<CondAst> {
        if self.peek() != Some(&Token::Open) {
            return match self.word()?.as_str() {
                "true" => Ok(CondAst::True),
                "false" => Ok(CondAst::False),
                other => Err(err(format!("unknown condition `{other}`"))),
            };
        }
        self.expect(Token::Open)?;
        let head = self.word()?;
        let c = match head.as_str() {
            "state" => {
                let subj = self.word()?;
                let state = match self.word()?.as_str() {
                    "notstarted" => OpState::NotStarted,
                    "open" => OpState::Open,
                    "closed" => OpState::Closed,
                    "failed" => OpState::Failed,
                    "deactivated" => OpState::Deactivated,
                    other => return Err(err(format!("unknown state `{other}`"))),
                };
                CondAst::State(subj, state)
            }
            "cmp" => {
                let lhs = self.qty()?;
                let op = self.comparator()?;
                let rhs = self.qty()?;
                CondAst::Cmp(lhs, op, rhs)
            }
            "and" | "or" => {
                let mut cs = Vec::new();
                while self.peek() != Some(&Token::Close) {
                    cs.push(self.cond()?);
                }
                if head == "and" {
                    CondAst::And(cs)
                } else {
                    CondAst::Or(cs)
                }
            }
            "not" => CondAst::Not(Box::new(self.cond()?)),
            other => return Err(err(format!("unknown condition form `{other}`"))),
        };
        self.expect(Token::Close)?;
        Ok(c)
    }

    fn qty(&mut self) -> Result<QtyAst> {
        if self.peek() != Some(&Token::Open) {
            return Ok(QtyAst::Const(self.number()?));
        }
        self.expect(Token::Open)?;
        let head = self.word()?;
        let q = match head.as_str() {
            "card" => QtyAst::Card(self.word()?),
            "est" => QtyAst::Est(self.word()?),
            "wait" => QtyAst::Wait(self.word()?),
            "mem" => QtyAst::Mem(self.word()?),
            "budget" => QtyAst::Budget(self.word()?),
            "scale" => {
                let f = self.number()?;
                QtyAst::Scale(f, Box::new(self.qty()?))
            }
            other => return Err(err(format!("unknown quantity form `{other}`"))),
        };
        self.expect(Token::Close)?;
        Ok(q)
    }

    fn action(&mut self) -> Result<ActionAst> {
        if self.peek() != Some(&Token::Open) {
            return match self.word()?.as_str() {
                "replan" => Ok(ActionAst::Replan),
                "reschedule" => Ok(ActionAst::Reschedule),
                other => Err(err(format!("unknown action `{other}`"))),
            };
        }
        self.expect(Token::Open)?;
        let head = self.word()?;
        let a = match head.as_str() {
            "activate" => ActionAst::Activate(self.word()?),
            "deactivate" => ActionAst::Deactivate(self.word()?),
            "error" => ActionAst::Error(self.name_word()?),
            "set-overflow" => {
                let op = self.word()?;
                let method = self.overflow_method()?;
                ActionAst::SetOverflow(op, method)
            }
            "alter-memory" => {
                let op = self.word()?;
                let bytes = self.int()? as usize;
                ActionAst::AlterMemory(op, bytes)
            }
            other => return Err(err(format!("unknown action form `{other}`"))),
        };
        self.expect(Token::Close)?;
        Ok(a)
    }
}

// ---- subject / rule resolution ----

fn resolve_subject(word: &str, names: &[(String, FragmentId)]) -> Result<SubjectRef> {
    if let Some(rest) = word.strip_prefix("op") {
        if let Ok(n) = rest.parse::<u32>() {
            return Ok(SubjectRef::Op(OpId(n)));
        }
    }
    names
        .iter()
        .find(|(n, _)| n == word)
        .map(|(_, id)| SubjectRef::Fragment(*id))
        .ok_or_else(|| err(format!("unknown rule subject `{word}`")))
}

fn resolve_op(word: &str) -> Result<OpId> {
    match resolve_subject(word, &[])? {
        SubjectRef::Op(id) => Ok(id),
        SubjectRef::Fragment(_) => unreachable!("empty name table"),
    }
}

fn resolve_qty(q: &QtyAst, names: &[(String, FragmentId)]) -> Result<Quantity> {
    Ok(match q {
        QtyAst::Const(c) => Quantity::Const(*c),
        QtyAst::Card(s) => Quantity::Card(resolve_subject(s, names)?),
        QtyAst::Est(s) => Quantity::EstCard(resolve_subject(s, names)?),
        QtyAst::Wait(s) => Quantity::TimeWaitingMs(resolve_subject(s, names)?),
        QtyAst::Mem(s) => Quantity::MemoryUsed(resolve_subject(s, names)?),
        QtyAst::Budget(s) => Quantity::MemoryBudget(resolve_subject(s, names)?),
        QtyAst::Scale(f, inner) => Quantity::Scaled(*f, Box::new(resolve_qty(inner, names)?)),
    })
}

fn resolve_cond(c: &CondAst, names: &[(String, FragmentId)]) -> Result<Condition> {
    Ok(match c {
        CondAst::True => Condition::True,
        CondAst::False => Condition::False,
        CondAst::State(s, state) => Condition::StateIs {
            subject: resolve_subject(s, names)?,
            state: *state,
        },
        CondAst::Cmp(lhs, op, rhs) => Condition::Cmp {
            lhs: resolve_qty(lhs, names)?,
            op: *op,
            rhs: resolve_qty(rhs, names)?,
        },
        CondAst::And(cs) => Condition::And(
            cs.iter()
                .map(|c| resolve_cond(c, names))
                .collect::<Result<_>>()?,
        ),
        CondAst::Or(cs) => Condition::Or(
            cs.iter()
                .map(|c| resolve_cond(c, names))
                .collect::<Result<_>>()?,
        ),
        CondAst::Not(inner) => Condition::Not(Box::new(resolve_cond(inner, names)?)),
    })
}

fn resolve_rule(ast: &RuleAst, names: &[(String, FragmentId)]) -> Result<Rule> {
    let owner = resolve_subject(&ast.owner, names)?;
    let subject = resolve_subject(&ast.subject, names)?;
    let event = match ast.value {
        Some(v) => EventPattern::with_value(ast.kind, subject, v),
        None => EventPattern::new(ast.kind, subject),
    };
    let condition = resolve_cond(&ast.condition, names)?;
    let actions = ast
        .actions
        .iter()
        .map(|a| {
            Ok(match a {
                ActionAst::Replan => Action::Replan,
                ActionAst::Reschedule => Action::Reschedule,
                ActionAst::Activate(s) => Action::Activate(resolve_subject(s, names)?),
                ActionAst::Deactivate(s) => Action::Deactivate(resolve_subject(s, names)?),
                ActionAst::Error(m) => Action::ReturnError(m.clone()),
                ActionAst::SetOverflow(op, method) => Action::SetOverflowMethod {
                    op: resolve_op(op)?,
                    method: *method,
                },
                ActionAst::AlterMemory(op, bytes) => Action::AlterMemory {
                    op: resolve_op(op)?,
                    bytes: *bytes,
                },
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Rule::new(&ast.name, owner, event, condition, actions))
}

fn parse_plan_impl(input: &str) -> Result<QueryPlan> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
        builder: PlanBuilder::new(),
    };
    let mut names: Vec<(String, FragmentId)> = Vec::new();
    let mut contingent: Vec<FragmentId> = Vec::new();
    let mut deps: Vec<(String, String)> = Vec::new();
    let mut output: Option<String> = None;
    // (owning fragment, rule) — None = global rule
    let mut rules: Vec<(Option<FragmentId>, RuleAst)> = Vec::new();

    while p.peek().is_some() {
        p.expect(Token::Open)?;
        match p.word()?.as_str() {
            "fragment" => {
                let name = p.word()?;
                let is_contingent = if let Some(Token::Word(w)) = p.peek() {
                    if w == "contingent" {
                        p.pos += 1;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                let node = p.node()?;
                let mat_name = format!("mat_{name}");
                let id = p.builder.fragment(node, &mat_name);
                // trailing local rule clauses
                while p.peek() == Some(&Token::Open) {
                    p.expect(Token::Open)?;
                    let kw = p.word()?;
                    if kw != "rule" {
                        return Err(err(format!("expected (rule …) in fragment, got `{kw}`")));
                    }
                    let ast = p.rule_body()?;
                    p.expect(Token::Close)?;
                    rules.push((Some(id), ast));
                }
                if is_contingent {
                    contingent.push(id);
                }
                if names.iter().any(|(n, _)| n == &name) {
                    return Err(err(format!("duplicate fragment name `{name}`")));
                }
                names.push((name, id));
            }
            "after" => {
                let before = p.word()?;
                let after = p.word()?;
                deps.push((before, after));
            }
            "rule" => {
                let ast = p.rule_body()?;
                rules.push((None, ast));
            }
            "output" => {
                output = Some(p.word()?);
            }
            other => return Err(err(format!("unknown top-level form `{other}`"))),
        }
        p.expect(Token::Close)?;
    }

    let lookup = |name: &str, names: &[(String, FragmentId)]| {
        names
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
            .ok_or_else(|| err(format!("unknown fragment `{name}`")))
    };
    for (before, after) in &deps {
        let b = lookup(before, &names)?;
        let a = lookup(after, &names)?;
        p.builder.depends(b, a);
    }
    let output_name = output.ok_or_else(|| err("missing (output <fragment>)"))?;
    let out_id = lookup(&output_name, &names)?;
    let mut local_rules: Vec<(FragmentId, Rule)> = Vec::new();
    let mut global_rules: Vec<Rule> = Vec::new();
    for (frag, ast) in &rules {
        let rule = resolve_rule(ast, &names)?;
        match frag {
            Some(id) => local_rules.push((*id, rule)),
            None => global_rules.push(rule),
        }
    }
    for (id, rule) in local_rules {
        p.builder.add_local_rule(id, rule);
    }
    let mut plan = p.builder.build(out_id);
    plan.global_rules = global_rules;
    // rename the output fragment's materialization to the conventional name
    if let Some(f) = plan.fragments.iter_mut().find(|f| f.id == out_id) {
        f.materialize_as = "result".into();
    }
    for id in contingent {
        if let Some(f) = plan.fragments.iter_mut().find(|f| f.id == id) {
            f.initially_active = false;
        }
    }
    Ok(plan)
}

/// Parse a textual plan. Fragment names map to ids in order of appearance;
/// the `(output …)` clause selects the answer fragment. The parsed plan is
/// validated with [`crate::validate::validate_plan`].
pub fn parse_plan(input: &str) -> Result<QueryPlan> {
    let plan = parse_plan_impl(input)?;
    crate::validate::validate_plan(&plan)?;
    Ok(plan)
}

/// [`parse_plan`] without the validation step: returns structurally
/// parseable plans even when they are semantically malformed, so the static
/// analyzer (and the `plan-lint` tool) can report **all** problems instead
/// of the parser bailing on the first.
pub fn parse_plan_unchecked(input: &str) -> Result<QueryPlan> {
    parse_plan_impl(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OperatorSpec;

    #[test]
    fn parses_two_fragment_plan_with_dependency() {
        let plan = parse_plan(
            r#"
            ; fragment one: remote join with a memory budget
            (fragment f0 (join dpj k = k :mem 4096 :overflow symmetric
                (wrapper A :timeout 100)
                (wrapper B)))
            (fragment f1 (join hybrid a.k = c.k
                (scan mat_f0)
                (wrapper C)))
            (after f0 f1)
            (output f1)
            "#,
        )
        .unwrap();
        assert_eq!(plan.fragments.len(), 2);
        assert_eq!(plan.dependencies.len(), 1);
        assert_eq!(plan.fragment(plan.output).unwrap().materialize_as, "result");
        let f0 = &plan.fragments[0];
        assert_eq!(f0.materialize_as, "mat_f0");
        match &f0.root.spec {
            OperatorSpec::Join { kind, overflow, .. } => {
                assert_eq!(*kind, JoinKind::DoublePipelined);
                assert_eq!(*overflow, OverflowMethod::IncrementalSymmetricFlush);
            }
            other => panic!("expected join, got {other:?}"),
        }
        assert_eq!(f0.root.memory_budget, Some(4096));
    }

    #[test]
    fn parses_exchange_wrapped_join() {
        let plan = parse_plan(
            r#"
            (fragment f (exchange 4 (join dpj k = k
                (wrapper L)
                (wrapper R))))
            (output f)
            "#,
        )
        .unwrap();
        match &plan.fragments[0].root.spec {
            OperatorSpec::Exchange { input, partitions } => {
                assert_eq!(*partitions, 4);
                assert!(matches!(input.spec, OperatorSpec::Join { .. }));
            }
            other => panic!("expected exchange, got {other:?}"),
        }
        assert_eq!(plan.fragments[0].root.label(), "exchange(x4)");
    }

    #[test]
    fn parses_select_project_union() {
        let plan = parse_plan(
            r#"
            (fragment f (project [a, b]
                (select a >= 10
                    (union (wrapper X) (wrapper Y)))))
            (output f)
            "#,
        )
        .unwrap();
        let root = &plan.fragments[0].root;
        assert!(matches!(root.spec, OperatorSpec::Project { .. }));
    }

    #[test]
    fn parses_sexpr_predicates() {
        let plan = parse_plan(
            r#"
            (fragment f (select (and (lit a >= 10) (not (cols a = b)))
                (wrapper X)))
            (output f)
            "#,
        )
        .unwrap();
        match &plan.fragments[0].root.spec {
            OperatorSpec::Select { predicate, .. } => match predicate {
                Predicate::And(ps) => {
                    assert_eq!(ps.len(), 2);
                    assert!(matches!(ps[1], Predicate::Not(_)));
                }
                other => panic!("expected and, got {other:?}"),
            },
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_depjoin() {
        let plan = parse_plan(
            r#"
            (fragment f (depjoin books isbn = isbn (wrapper orders)))
            (output f)
            "#,
        )
        .unwrap();
        match &plan.fragments[0].root.spec {
            OperatorSpec::DependentJoin {
                source,
                bind_col,
                probe_col,
                ..
            } => {
                assert_eq!(source, "books");
                assert_eq!(bind_col, "isbn");
                assert_eq!(probe_col, "isbn");
            }
            other => panic!("expected depjoin, got {other:?}"),
        }
    }

    #[test]
    fn parses_collector_with_policy_knobs() {
        let plan = parse_plan(
            r#"
            (fragment f (collector :quota 500 :timeout 80
                (child mirror1)
                (child mirror2 standby)))
            (output f)
            "#,
        )
        .unwrap();
        match &plan.fragments[0].root.spec {
            OperatorSpec::Collector {
                children,
                quota,
                child_timeout_ms,
            } => {
                assert_eq!(children.len(), 2);
                assert!(children[0].initially_active);
                assert!(!children[1].initially_active);
                assert_eq!(*quota, Some(500));
                assert_eq!(*child_timeout_ms, Some(80));
            }
            other => panic!("expected collector, got {other:?}"),
        }
    }

    #[test]
    fn contingent_fragments_parse() {
        let plan = parse_plan(
            r#"
            (fragment main (wrapper A))
            (fragment alt contingent (wrapper B))
            (after main alt)
            (rule failover :owner main :when error op0 :do (activate alt))
            (output main)
            "#,
        )
        .unwrap();
        assert!(!plan.fragments[1].initially_active);
    }

    #[test]
    fn parses_rule_clauses() {
        let plan = parse_plan(
            r#"
            (fragment f0
                (join dpj k = k :mem 4096
                    (wrapper A :timeout 50)
                    (wrapper B))
                (rule "scramble" :owner f0 :when timeout op0 :do reschedule))
            (rule "replan-big" :owner f0 :when closed f0
                :if (cmp (card op2) > (scale 2 (est op2)))
                :do replan)
            (output f0)
            "#,
        )
        .unwrap();
        assert_eq!(plan.fragments[0].local_rules.len(), 1);
        assert_eq!(plan.global_rules.len(), 1);
        let local = &plan.fragments[0].local_rules[0];
        assert_eq!(local.name, "scramble");
        assert_eq!(local.event.kind, EventKind::Timeout);
        assert_eq!(local.event.subject, SubjectRef::Op(OpId(0)));
        assert_eq!(local.actions, vec![Action::Reschedule]);
        let global = &plan.global_rules[0];
        assert_eq!(global.owner, SubjectRef::Fragment(FragmentId(0)));
        match &global.condition {
            Condition::Cmp { lhs, op, rhs } => {
                assert_eq!(lhs, &Quantity::Card(SubjectRef::Op(OpId(2))));
                assert_eq!(*op, CmpOp::Gt);
                assert!(matches!(rhs, Quantity::Scaled(f, _) if *f == 2.0));
            }
            other => panic!("expected cmp condition, got {other:?}"),
        }
        assert_eq!(global.actions, vec![Action::Replan]);
    }

    #[test]
    fn unchecked_parse_accepts_malformed_plans() {
        // rule owner op99 does not exist: strict parse rejects, unchecked
        // returns the plan for the analyzer to report on
        let text = r#"
            (fragment f (wrapper A))
            (rule bad :owner op99 :when closed f :do replan)
            (output f)
        "#;
        assert!(parse_plan(text).is_err());
        let plan = parse_plan_unchecked(text).unwrap();
        assert_eq!(plan.global_rules.len(), 1);
    }

    #[test]
    fn select_string_literal() {
        let plan =
            parse_plan(r#"(fragment f (select name = "FRANCE" (wrapper nation))) (output f)"#)
                .unwrap();
        match &plan.fragments[0].root.spec {
            OperatorSpec::Select { predicate, .. } => match predicate {
                Predicate::ColLit { value, .. } => {
                    assert_eq!(value, &Value::str("FRANCE"));
                }
                other => panic!("unexpected predicate {other:?}"),
            },
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_descriptive() {
        for (input, needle) in [
            ("(fragment f (wrapper A))", "missing (output"),
            (
                "(fragment f (join bad k = k (wrapper A) (wrapper B))) (output f)",
                "join kind",
            ),
            ("(output ghost)", "unknown fragment"),
            (
                "(fragment f (union (wrapper A))) (output f)",
                "at least two",
            ),
            (
                "(fragment f (wrapper A)) (fragment f (wrapper B)) (output f)",
                "duplicate",
            ),
            (
                "(fragment f (wrapper A)) (rule r :owner ghost :when closed f) (output f)",
                "unknown rule subject",
            ),
        ] {
            let e = parse_plan(input).unwrap_err().to_string();
            assert!(e.contains(needle), "input `{input}`: {e}");
        }
    }

    #[test]
    fn round_trip_with_renderer() {
        // parse → render → contains the key structure
        let plan = parse_plan(
            r#"
            (fragment f0 (join dpj k = k (wrapper A) (wrapper B)))
            (output f0)
            "#,
        )
        .unwrap();
        let text = crate::text::render_plan(&plan);
        assert!(text.contains("wrapper(A)"));
        assert!(text.contains("DoublePipelined"));
    }
}
