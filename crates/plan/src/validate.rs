//! Static plan validation: the structure and rule passes.
//!
//! The optimizer is "ultimately responsible" for avoiding bad rule sets
//! (§3.1.2); this module provides the statically checkable half the paper
//! lists, reporting through the lint-style [`crate::diag`] engine so every
//! finding is collected (the schema/exchange/memory passes live in the
//! `tukwila-analyze` crate, which composes them with these two):
//!
//! * [`analyze_structure`]: operator and fragment ids are unique, the
//!   output fragment exists, dependencies reference existing fragments and
//!   form a DAG, fragment results are consumed, contingent fragments are
//!   reachable;
//! * [`analyze_rules`]: rule owners, subjects and action targets refer to
//!   plan elements; **conflict freedom** — no two rules with overlapping
//!   trigger patterns where one negates the other's effect (restriction (3)
//!   of §3.1.2) — plus duplicate, unreachable, shadowed and dead-timeout
//!   rule detection.
//!
//! [`validate_plan`] is the hard-failure wrapper the parser and lowerer
//! call: it runs both passes and converts the first Error-severity finding
//! into a [`TukwilaError`].

use std::collections::BTreeSet;

use tukwila_common::{Result, TukwilaError};

use crate::diag::{codes, Diagnostic, Pass, Span};
use crate::ids::OpId;
use crate::ops::OperatorSpec;
use crate::plan::QueryPlan;
use crate::rules::{Action, Condition, EventKind, Rule, SubjectRef};

/// Validate a plan for execution: run the structure and rule passes and
/// fail on the first Error-severity finding. Warnings are ignored here —
/// use [`analyze_structure`] / [`analyze_rules`] (or the full analyzer in
/// `tukwila-analyze`) to see everything.
pub fn validate_plan(plan: &QueryPlan) -> Result<()> {
    let mut diags = analyze_structure(plan);
    diags.extend(analyze_rules(plan));
    match diags
        .iter()
        .find(|d| d.severity == crate::diag::Severity::Error)
    {
        None => Ok(()),
        Some(d) => {
            let msg = format!("{}: {}", d.code, d.message);
            Err(match d.pass {
                Pass::Rules => TukwilaError::Rule(msg),
                _ => TukwilaError::Plan(msg),
            })
        }
    }
}

/// Structure pass: ids, output, dependency graph, fragment liveness.
pub fn analyze_structure(plan: &QueryPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_unique_ids(plan, &mut out);
    check_dependencies(plan, &mut out);
    check_fragment_liveness(plan, &mut out);
    out
}

/// Rule pass: ownership, subjects, conflicts, reachability.
pub fn analyze_rules(plan: &QueryPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_rule_subjects(plan, &mut out);
    out.extend(check_rule_conflicts(&plan.all_rules()));
    check_rule_hygiene(plan, &mut out);
    out
}

fn check_unique_ids(plan: &QueryPlan, out: &mut Vec<Diagnostic>) {
    let mut frag_ids = BTreeSet::new();
    let mut op_ids: BTreeSet<OpId> = BTreeSet::new();
    for f in &plan.fragments {
        if !frag_ids.insert(f.id) {
            out.push(Diagnostic::new(
                codes::DUPLICATE_FRAGMENT_ID,
                Span::Fragment(f.id),
                format!("duplicate fragment id {}", f.id),
            ));
        }
        for id in f.op_ids() {
            if !op_ids.insert(id) {
                out.push(Diagnostic::new(
                    codes::DUPLICATE_OP_ID,
                    Span::Op {
                        fragment: Some(f.id),
                        op: id,
                    },
                    format!("duplicate operator id {id} (fragment {})", f.id),
                ));
            }
        }
    }
    if plan.fragment(plan.output).is_none() {
        out.push(Diagnostic::new(
            codes::MISSING_OUTPUT,
            Span::Plan,
            format!("output fragment {} does not exist", plan.output),
        ));
    }
}

fn check_dependencies(plan: &QueryPlan, out: &mut Vec<Diagnostic>) {
    let mut self_dep = false;
    for (before, after) in &plan.dependencies {
        for id in [before, after] {
            if plan.fragment(*id).is_none() {
                out.push(Diagnostic::new(
                    codes::UNKNOWN_DEPENDENCY,
                    Span::Plan,
                    format!("dependency references unknown fragment {id}"),
                ));
            }
        }
        if before == after {
            self_dep = true;
            out.push(Diagnostic::new(
                codes::SELF_DEPENDENCY,
                Span::Fragment(*before),
                format!("fragment {before} depends on itself"),
            ));
        }
    }
    // A self-edge always makes the graph cyclic; don't double-report.
    if !self_dep && !plan.is_acyclic() {
        out.push(Diagnostic::new(
            codes::DEPENDENCY_CYCLE,
            Span::Plan,
            "fragment dependency graph has a cycle".to_string(),
        ));
    }
}

/// TA007 / TA008: fragments whose results can never be observed.
fn check_fragment_liveness(plan: &QueryPlan, out: &mut Vec<Diagnostic>) {
    // Materializations scanned anywhere in the plan.
    let mut scanned: BTreeSet<&str> = BTreeSet::new();
    for f in &plan.fragments {
        f.root.walk(&mut |n| {
            if let OperatorSpec::TableScan { table } = &n.spec {
                scanned.insert(table.as_str());
            }
        });
    }
    for f in &plan.fragments {
        // Orphan check only applies to complete plans: a partial plan's
        // fragments are consumed by the re-invoked optimizer.
        let ordered_before_something = plan.dependencies.iter().any(|(b, _)| *b == f.id);
        if plan.complete
            && f.id != plan.output
            && !scanned.contains(f.materialize_as.as_str())
            && !ordered_before_something
        {
            out.push(
                Diagnostic::new(
                    codes::ORPHAN_FRAGMENT,
                    Span::Fragment(f.id),
                    format!(
                        "fragment {} materializes `{}` but nothing scans it and \
                         nothing is ordered after it",
                        f.id, f.materialize_as
                    ),
                )
                .with_note("dead fragments waste source fetches and memory".to_string()),
            );
        }
        if !f.initially_active {
            let activated = plan.all_rules().iter().any(|r| {
                r.actions
                    .iter()
                    .any(|a| matches!(a, Action::Activate(s) if *s == SubjectRef::Fragment(f.id)))
            });
            if !activated {
                out.push(Diagnostic::new(
                    codes::ORPHAN_CONTINGENT,
                    Span::Fragment(f.id),
                    format!(
                        "contingent fragment {} is never activated by any rule",
                        f.id
                    ),
                ));
            }
        }
    }
}

fn subject_exists(plan: &QueryPlan, s: SubjectRef) -> bool {
    match s {
        SubjectRef::Fragment(id) => plan.fragment(id).is_some(),
        SubjectRef::Op(id) => plan.fragments.iter().any(|f| f.op_ids().contains(&id)),
    }
}

fn rule_span(rule: &Rule) -> Span {
    Span::Rule {
        name: rule.name.clone(),
        owner: rule.owner,
    }
}

fn check_rule_subjects(plan: &QueryPlan, out: &mut Vec<Diagnostic>) {
    for rule in plan.all_rules() {
        if !subject_exists(plan, rule.owner) {
            out.push(Diagnostic::new(
                codes::UNKNOWN_RULE_OWNER,
                rule_span(rule),
                format!("rule `{}` has unknown owner {}", rule.name, rule.owner),
            ));
        }
        if !subject_exists(plan, rule.event.subject) {
            out.push(Diagnostic::new(
                codes::UNKNOWN_RULE_SUBJECT,
                rule_span(rule),
                format!(
                    "rule `{}` listens on unknown subject {}",
                    rule.name, rule.event.subject
                ),
            ));
        }
        for a in &rule.actions {
            let target = match a {
                Action::SetOverflowMethod { op, .. } | Action::AlterMemory { op, .. } => {
                    Some(SubjectRef::Op(*op))
                }
                Action::Activate(s) | Action::Deactivate(s) => Some(*s),
                _ => None,
            };
            if let Some(t) = target {
                if !subject_exists(plan, t) {
                    out.push(Diagnostic::new(
                        codes::UNKNOWN_ACTION_TARGET,
                        rule_span(rule),
                        format!("rule `{}` action targets unknown subject {t}", rule.name),
                    ));
                }
            }
        }
    }
}

/// Restriction (3) of §3.1.2: "No two rules may ever be active such that
/// one rule negates the effect of the other and both rules can be fired
/// simultaneously." Two rules can fire simultaneously when their event
/// patterns can match the same event; the negation we check is
/// activate/deactivate of the same subject (the only directly inverse
/// action pair in the language). Unlike the pre-diagnostics version, this
/// reports **every** conflicting pair, not just the first.
pub fn check_rule_conflicts(rules: &[&Rule]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, a) in rules.iter().enumerate() {
        for b in rules.iter().skip(i + 1) {
            if !patterns_overlap(a, b) {
                continue;
            }
            for act_a in &a.actions {
                for act_b in &b.actions {
                    if let (Some((sa, on_a)), Some((sb, on_b))) =
                        (act_a.activation_target(), act_b.activation_target())
                    {
                        if sa == sb && on_a != on_b {
                            out.push(
                                Diagnostic::new(
                                    codes::CONFLICTING_RULES,
                                    rule_span(a),
                                    format!(
                                        "rules `{}` and `{}` can fire on the same event and \
                                         negate each other on {sa}",
                                        a.name, b.name
                                    ),
                                )
                                .with_note(format!(
                                    "both trigger on {:?}({})",
                                    a.event.kind, a.event.subject
                                )),
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

fn patterns_overlap(a: &Rule, b: &Rule) -> bool {
    a.event.kind == b.event.kind
        && a.event.subject == b.event.subject
        && match (a.event.value, b.event.value) {
            (Some(x), Some(y)) => x == y,
            _ => true,
        }
}

/// TA014 / TA015 / TA016 / TA017: duplicate names, unreachable conditions,
/// shadowing duplicates, and timeout rules on subjects that never time out.
fn check_rule_hygiene(plan: &QueryPlan, out: &mut Vec<Diagnostic>) {
    let rules = plan.all_rules();
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for rule in &rules {
        if !names.insert(rule.name.as_str()) {
            out.push(Diagnostic::new(
                codes::DUPLICATE_RULE_NAME,
                rule_span(rule),
                format!("rule name `{}` is used more than once", rule.name),
            ));
        }
        if always_false(&rule.condition) {
            out.push(Diagnostic::new(
                codes::UNREACHABLE_RULE,
                rule_span(rule),
                format!("rule `{}` has a condition that is always false", rule.name),
            ));
        }
        if rule.event.kind == EventKind::Timeout && !emits_timeouts(plan, rule.event.subject) {
            out.push(
                Diagnostic::new(
                    codes::DEAD_TIMEOUT_RULE,
                    rule_span(rule),
                    format!(
                        "rule `{}` listens for timeout({}) but that subject never \
                         emits timeout events",
                        rule.name, rule.event.subject
                    ),
                )
                .with_note(
                    "timeouts come from wrapper scans with :timeout set and from \
                     collector children under a child timeout"
                        .to_string(),
                ),
            );
        }
    }
    for (i, a) in rules.iter().enumerate() {
        for b in rules.iter().skip(i + 1) {
            if a.event == b.event && a.condition == b.condition && a.actions == b.actions {
                out.push(
                    Diagnostic::new(
                        codes::SHADOWED_RULE,
                        rule_span(b),
                        format!(
                            "rule `{}` duplicates the trigger, condition and actions of \
                             rule `{}`",
                            b.name, a.name
                        ),
                    )
                    .with_note("each will fire once; the second firing is redundant".to_string()),
                );
            }
        }
    }
}

/// Whether `subject` can ever raise a Timeout event: a wrapper scan with a
/// timeout configured, or a collector child whose collector sets a child
/// timeout (the only two places the engine generates them).
fn emits_timeouts(plan: &QueryPlan, subject: SubjectRef) -> bool {
    let SubjectRef::Op(id) = subject else {
        return false;
    };
    for f in &plan.fragments {
        let mut found = false;
        f.root.walk(&mut |n| {
            match &n.spec {
                OperatorSpec::WrapperScan { timeout_ms, .. } if n.id == id => {
                    found |= timeout_ms.is_some();
                }
                OperatorSpec::Collector {
                    children,
                    child_timeout_ms,
                    ..
                } if children.iter().any(|c| c.id == id) => {
                    found |= child_timeout_ms.is_some();
                }
                _ => {}
            };
        });
        if found {
            return true;
        }
    }
    false
}

fn always_false(c: &Condition) -> bool {
    match c {
        Condition::False => true,
        Condition::And(cs) => cs.iter().any(always_false),
        Condition::Or(cs) => cs.iter().all(always_false),
        Condition::Not(inner) => always_true(inner),
        _ => false,
    }
}

fn always_true(c: &Condition) -> bool {
    match c {
        Condition::True => true,
        Condition::And(cs) => cs.iter().all(always_true),
        Condition::Or(cs) => cs.iter().any(always_true),
        Condition::Not(inner) => always_false(inner),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::ids::FragmentId;
    use crate::ops::JoinKind;
    use crate::rules::{Condition, EventKind, EventPattern};

    fn valid_plan() -> QueryPlan {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan("A");
        let s2 = b.wrapper_scan("B");
        let j = b.join(JoinKind::HybridHash, s1, s2, "k", "k");
        let f = b.fragment(j, "out");
        b.build(f)
    }

    #[test]
    fn valid_plan_passes() {
        assert!(validate_plan(&valid_plan()).is_ok());
    }

    #[test]
    fn duplicate_op_ids_rejected() {
        let mut plan = valid_plan();
        let mut f2 = plan.fragments[0].clone();
        f2.id = FragmentId(99);
        plan.fragments.push(f2); // same op ids in two fragments
        assert_eq!(validate_plan(&plan).unwrap_err().kind(), "plan");
        let diags = analyze_structure(&plan);
        // one duplicate per op in the cloned fragment, all collected
        assert_eq!(
            diags.iter().filter(|d| d.code == "TA002").count(),
            3,
            "{diags:?}"
        );
    }

    #[test]
    fn missing_output_rejected() {
        let mut plan = valid_plan();
        plan.output = FragmentId(42);
        assert!(validate_plan(&plan).is_err());
        assert!(analyze_structure(&plan).iter().any(|d| d.code == "TA003"));
    }

    #[test]
    fn self_dependency_rejected() {
        let mut plan = valid_plan();
        plan.dependencies.push((FragmentId(0), FragmentId(0)));
        assert!(validate_plan(&plan).is_err());
        let diags = analyze_structure(&plan);
        assert!(diags.iter().any(|d| d.code == "TA005"));
        // the self-edge must not also count as a generic cycle
        assert!(!diags.iter().any(|d| d.code == "TA006"), "{diags:?}");
    }

    #[test]
    fn dependency_cycle_detected() {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan("A");
        let f1 = b.fragment(s1, "m1");
        let s2 = b.table_scan("m1");
        let f2 = b.fragment(s2, "result");
        b.depends(f1, f2);
        b.depends(f2, f1);
        let plan = b.build(f2);
        assert!(analyze_structure(&plan).iter().any(|d| d.code == "TA006"));
    }

    #[test]
    fn unknown_rule_owner_rejected() {
        let mut plan = valid_plan();
        plan.global_rules.push(Rule::new(
            "bad",
            SubjectRef::Op(OpId(99)),
            EventPattern::new(EventKind::Closed, SubjectRef::Fragment(FragmentId(0))),
            Condition::True,
            vec![],
        ));
        assert_eq!(validate_plan(&plan).unwrap_err().kind(), "rule");
        assert!(analyze_rules(&plan).iter().any(|d| d.code == "TA010"));
    }

    #[test]
    fn conflicting_activate_deactivate_rejected() {
        let mut plan = valid_plan();
        let target = SubjectRef::Op(OpId(0));
        let ev = EventPattern::new(EventKind::Closed, SubjectRef::Fragment(FragmentId(0)));
        plan.global_rules.push(Rule::new(
            "r1",
            SubjectRef::Fragment(FragmentId(0)),
            ev.clone(),
            Condition::True,
            vec![Action::Activate(target)],
        ));
        plan.global_rules.push(Rule::new(
            "r2",
            SubjectRef::Fragment(FragmentId(0)),
            ev,
            Condition::True,
            vec![Action::Deactivate(target)],
        ));
        let err = validate_plan(&plan).unwrap_err();
        assert_eq!(err.kind(), "rule");
        assert!(err.to_string().contains("negate"));
    }

    #[test]
    fn all_conflicting_pairs_reported() {
        // three rules on the same event, two activators and one deactivator
        // → two conflicting pairs, both reported (the old checker stopped
        // at the first).
        let mut plan = valid_plan();
        let target = SubjectRef::Op(OpId(0));
        let ev = EventPattern::new(EventKind::Closed, SubjectRef::Fragment(FragmentId(0)));
        for (name, action) in [
            ("on-1", Action::Activate(target)),
            ("on-2", Action::Activate(target)),
            ("off", Action::Deactivate(target)),
        ] {
            plan.global_rules.push(Rule::new(
                name,
                SubjectRef::Fragment(FragmentId(0)),
                ev.clone(),
                Condition::True,
                vec![action],
            ));
        }
        let conflicts = check_rule_conflicts(&plan.all_rules());
        assert_eq!(conflicts.len(), 2, "{conflicts:?}");
        assert!(conflicts.iter().all(|d| d.code == "TA013"));
    }

    #[test]
    fn distinct_threshold_values_do_not_conflict() {
        // The paper's collector example: threshold(A,10) deactivates B while
        // threshold(B,10) deactivates A — different subjects, no conflict.
        let mut plan = valid_plan();
        let op_a = SubjectRef::Op(OpId(0));
        let op_b = SubjectRef::Op(OpId(1));
        plan.global_rules.push(Rule::new(
            "win-a",
            SubjectRef::Fragment(FragmentId(0)),
            EventPattern::with_value(EventKind::Threshold, op_a, 10),
            Condition::True,
            vec![Action::Deactivate(op_b)],
        ));
        plan.global_rules.push(Rule::new(
            "win-b",
            SubjectRef::Fragment(FragmentId(0)),
            EventPattern::with_value(EventKind::Threshold, op_b, 10),
            Condition::True,
            vec![Action::Deactivate(op_a)],
        ));
        assert!(validate_plan(&plan).is_ok());
    }

    #[test]
    fn rule_hygiene_warnings() {
        let mut plan = valid_plan();
        let frag = SubjectRef::Fragment(FragmentId(0));
        let ev = EventPattern::new(EventKind::Closed, frag);
        // duplicate name + shadowed pair + unreachable condition
        plan.global_rules.push(Rule::new(
            "dup",
            frag,
            ev.clone(),
            Condition::True,
            vec![Action::Replan],
        ));
        plan.global_rules.push(Rule::new(
            "dup",
            frag,
            ev.clone(),
            Condition::True,
            vec![Action::Replan],
        ));
        plan.global_rules.push(Rule::new(
            "never",
            frag,
            ev,
            Condition::False,
            vec![Action::Reschedule],
        ));
        let diags = analyze_rules(&plan);
        assert!(diags.iter().any(|d| d.code == "TA014"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "TA015"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "TA016"), "{diags:?}");
        // warnings do not fail hard validation
        assert!(validate_plan(&plan).is_ok());
    }

    #[test]
    fn dead_timeout_rule_flagged_and_live_one_not() {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan_opts("A", Some(100), None); // has timeout
        let s2 = b.wrapper_scan("B"); // no timeout
        let s1_id = s1.id;
        let s2_id = s2.id;
        let j = b.join(JoinKind::HybridHash, s1, s2, "k", "k");
        let f = b.fragment(j, "out");
        b.add_local_rule(f, Rule::reschedule_on_timeout(f, s1_id));
        b.add_local_rule(f, Rule::reschedule_on_timeout(f, s2_id));
        let plan = b.build(f);
        let diags = analyze_rules(&plan);
        let dead: Vec<_> = diags.iter().filter(|d| d.code == "TA017").collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains(&s2_id.to_string()));
    }

    #[test]
    fn orphan_fragment_and_contingent_warned() {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan("A");
        let _dead = b.fragment(s1, "never_read");
        let s2 = b.wrapper_scan("B");
        let alt = b.contingent_fragment(s2, "alt");
        let s3 = b.wrapper_scan("C");
        let out = b.fragment(s3, "result");
        let plan = b.build(out);
        let diags = analyze_structure(&plan);
        assert!(diags.iter().any(|d| d.code == "TA007"), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == "TA008"), "{diags:?}");
        // contingent fragments with an activating rule are fine
        let mut plan2 = plan.clone();
        plan2.global_rules.push(Rule::new(
            "enable-alt",
            SubjectRef::Fragment(out),
            EventPattern::new(EventKind::Error, SubjectRef::Fragment(out)),
            Condition::True,
            vec![Action::Activate(SubjectRef::Fragment(alt))],
        ));
        assert!(!analyze_structure(&plan2).iter().any(|d| d.code == "TA008"));
    }
}
