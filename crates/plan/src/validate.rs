//! Static plan validation.
//!
//! The optimizer is "ultimately responsible" for avoiding bad rule sets
//! (§3.1.2); this module provides the checks the paper lists as statically
//! checkable:
//!
//! 1. operator and fragment ids are unique;
//! 2. dependencies reference existing fragments and form a DAG;
//! 3. rule owners and subjects refer to plan elements;
//! 4. **conflict freedom**: no two rules with overlapping trigger patterns
//!    where one negates the other's effect (activate vs deactivate of the
//!    same subject) — restriction (3) of §3.1.2.

use std::collections::BTreeSet;

use tukwila_common::{Result, TukwilaError};

use crate::ids::OpId;
use crate::plan::QueryPlan;
use crate::rules::{Action, Rule, SubjectRef};

/// Validate a plan; returns the first problem found.
pub fn validate_plan(plan: &QueryPlan) -> Result<()> {
    check_unique_ids(plan)?;
    check_dependencies(plan)?;
    check_rule_subjects(plan)?;
    check_rule_conflicts(&plan.all_rules())?;
    Ok(())
}

fn check_unique_ids(plan: &QueryPlan) -> Result<()> {
    let mut frag_ids = BTreeSet::new();
    let mut op_ids: BTreeSet<OpId> = BTreeSet::new();
    for f in &plan.fragments {
        if !frag_ids.insert(f.id) {
            return Err(TukwilaError::Plan(format!(
                "duplicate fragment id {}",
                f.id
            )));
        }
        for id in f.op_ids() {
            if !op_ids.insert(id) {
                return Err(TukwilaError::Plan(format!(
                    "duplicate operator id {id} (fragment {})",
                    f.id
                )));
            }
        }
    }
    if plan.fragment(plan.output).is_none() {
        return Err(TukwilaError::Plan(format!(
            "output fragment {} does not exist",
            plan.output
        )));
    }
    Ok(())
}

fn check_dependencies(plan: &QueryPlan) -> Result<()> {
    for (before, after) in &plan.dependencies {
        for id in [before, after] {
            if plan.fragment(*id).is_none() {
                return Err(TukwilaError::Plan(format!(
                    "dependency references unknown fragment {id}"
                )));
            }
        }
        if before == after {
            return Err(TukwilaError::Plan(format!(
                "fragment {before} depends on itself"
            )));
        }
    }
    if !plan.is_acyclic() {
        return Err(TukwilaError::Plan(
            "fragment dependency graph has a cycle".to_string(),
        ));
    }
    Ok(())
}

fn subject_exists(plan: &QueryPlan, s: SubjectRef) -> bool {
    match s {
        SubjectRef::Fragment(id) => plan.fragment(id).is_some(),
        SubjectRef::Op(id) => plan.fragments.iter().any(|f| f.op_ids().contains(&id)),
    }
}

fn check_rule_subjects(plan: &QueryPlan) -> Result<()> {
    for rule in plan.all_rules() {
        if !subject_exists(plan, rule.owner) {
            return Err(TukwilaError::Rule(format!(
                "rule `{}` has unknown owner {}",
                rule.name, rule.owner
            )));
        }
        if !subject_exists(plan, rule.event.subject) {
            return Err(TukwilaError::Rule(format!(
                "rule `{}` listens on unknown subject {}",
                rule.name, rule.event.subject
            )));
        }
        for a in &rule.actions {
            let target = match a {
                Action::SetOverflowMethod { op, .. } | Action::AlterMemory { op, .. } => {
                    Some(SubjectRef::Op(*op))
                }
                Action::Activate(s) | Action::Deactivate(s) => Some(*s),
                _ => None,
            };
            if let Some(t) = target {
                if !subject_exists(plan, t) {
                    return Err(TukwilaError::Rule(format!(
                        "rule `{}` action targets unknown subject {t}",
                        rule.name
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Restriction (3) of §3.1.2: "No two rules may ever be active such that
/// one rule negates the effect of the other and both rules can be fired
/// simultaneously." Two rules can fire simultaneously when their event
/// patterns can match the same event; the negation we check is
/// activate/deactivate of the same subject (the only directly inverse
/// action pair in the language).
pub fn check_rule_conflicts(rules: &[&Rule]) -> Result<()> {
    for (i, a) in rules.iter().enumerate() {
        for b in rules.iter().skip(i + 1) {
            if !patterns_overlap(a, b) {
                continue;
            }
            for act_a in &a.actions {
                for act_b in &b.actions {
                    if let (Some((sa, on_a)), Some((sb, on_b))) =
                        (act_a.activation_target(), act_b.activation_target())
                    {
                        if sa == sb && on_a != on_b {
                            return Err(TukwilaError::Rule(format!(
                                "rules `{}` and `{}` can fire on the same event and \
                                 negate each other on {sa}",
                                a.name, b.name
                            )));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn patterns_overlap(a: &Rule, b: &Rule) -> bool {
    a.event.kind == b.event.kind
        && a.event.subject == b.event.subject
        && match (a.event.value, b.event.value) {
            (Some(x), Some(y)) => x == y,
            _ => true,
        }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::ids::FragmentId;
    use crate::ops::JoinKind;
    use crate::rules::{Condition, EventKind, EventPattern};

    fn valid_plan() -> QueryPlan {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan("A");
        let s2 = b.wrapper_scan("B");
        let j = b.join(JoinKind::HybridHash, s1, s2, "k", "k");
        let f = b.fragment(j, "out");
        b.build(f)
    }

    #[test]
    fn valid_plan_passes() {
        assert!(validate_plan(&valid_plan()).is_ok());
    }

    #[test]
    fn duplicate_op_ids_rejected() {
        let mut plan = valid_plan();
        let mut f2 = plan.fragments[0].clone();
        f2.id = FragmentId(99);
        plan.fragments.push(f2); // same op ids in two fragments
        assert_eq!(validate_plan(&plan).unwrap_err().kind(), "plan");
    }

    #[test]
    fn missing_output_rejected() {
        let mut plan = valid_plan();
        plan.output = FragmentId(42);
        assert!(validate_plan(&plan).is_err());
    }

    #[test]
    fn self_dependency_rejected() {
        let mut plan = valid_plan();
        plan.dependencies.push((FragmentId(0), FragmentId(0)));
        assert!(validate_plan(&plan).is_err());
    }

    #[test]
    fn unknown_rule_owner_rejected() {
        let mut plan = valid_plan();
        plan.global_rules.push(Rule::new(
            "bad",
            SubjectRef::Op(OpId(99)),
            EventPattern::new(EventKind::Closed, SubjectRef::Fragment(FragmentId(0))),
            Condition::True,
            vec![],
        ));
        assert_eq!(validate_plan(&plan).unwrap_err().kind(), "rule");
    }

    #[test]
    fn conflicting_activate_deactivate_rejected() {
        let mut plan = valid_plan();
        let target = SubjectRef::Op(OpId(0));
        let ev = EventPattern::new(EventKind::Closed, SubjectRef::Fragment(FragmentId(0)));
        plan.global_rules.push(Rule::new(
            "r1",
            SubjectRef::Fragment(FragmentId(0)),
            ev.clone(),
            Condition::True,
            vec![Action::Activate(target)],
        ));
        plan.global_rules.push(Rule::new(
            "r2",
            SubjectRef::Fragment(FragmentId(0)),
            ev,
            Condition::True,
            vec![Action::Deactivate(target)],
        ));
        let err = validate_plan(&plan).unwrap_err();
        assert_eq!(err.kind(), "rule");
        assert!(err.to_string().contains("negate"));
    }

    #[test]
    fn distinct_threshold_values_do_not_conflict() {
        // The paper's collector example: threshold(A,10) deactivates B while
        // threshold(B,10) deactivates A — different subjects, no conflict.
        let mut plan = valid_plan();
        let op_a = SubjectRef::Op(OpId(0));
        let op_b = SubjectRef::Op(OpId(1));
        plan.global_rules.push(Rule::new(
            "win-a",
            SubjectRef::Fragment(FragmentId(0)),
            EventPattern::with_value(EventKind::Threshold, op_a, 10),
            Condition::True,
            vec![Action::Deactivate(op_b)],
        ));
        plan.global_rules.push(Rule::new(
            "win-b",
            SubjectRef::Fragment(FragmentId(0)),
            EventPattern::with_value(EventKind::Threshold, op_b, 10),
            Condition::True,
            vec![Action::Deactivate(op_a)],
        ));
        assert!(validate_plan(&plan).is_ok());
    }
}
