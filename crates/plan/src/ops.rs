//! Physical operator nodes.
//!
//! Each node carries the five annotations of §3.1.1: the algebraic operator
//! and its chosen physical implementation (together, [`OperatorSpec`]), the
//! children (inside the spec), the memory allocated to the operator, and an
//! estimate of result cardinality.

use serde::{Deserialize, Serialize};

use crate::ids::OpId;
use crate::predicate::Predicate;

/// Physical join algorithm choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JoinKind {
    /// Hybrid hash join (§4.2.1): builds a table from the *right* (inner)
    /// child, lazily spilling buckets on overflow; probes with the left
    /// (outer) child. Asymmetric — inner choice matters.
    HybridHash,
    /// Grace/recursive hash join (§4.2.1): partitions both inputs to spill
    /// buckets up front when the inner overflows, then joins pairwise.
    GraceHash,
    /// Tuple nested loops (baseline; inner fully buffered).
    NestedLoops,
    /// Sort-merge (baseline; blocks on sorting both inputs — cannot
    /// pipeline, per §4.2).
    SortMerge,
    /// The double pipelined hash join (§4.2.2): symmetric, multithreaded,
    /// produces tuples immediately; holds both inputs in memory and uses an
    /// [`OverflowMethod`] when it cannot.
    DoublePipelined,
}

impl JoinKind {
    /// Whether the algorithm is symmetric (no inner/outer distinction).
    pub fn is_symmetric(&self) -> bool {
        matches!(self, JoinKind::DoublePipelined)
    }

    /// Whether the algorithm can be parallelized by hash-partitioning
    /// both inputs on the join keys (the `Exchange` operator's
    /// eligibility check — shared by the optimizer's lowering and the
    /// engine's builder so the two can never drift).
    pub fn is_hash_partitionable(&self) -> bool {
        matches!(
            self,
            JoinKind::DoublePipelined | JoinKind::HybridHash | JoinKind::GraceHash
        )
    }
}

/// Memory-overflow resolution strategy for the double pipelined join
/// (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowMethod {
    /// No strategy: raise `out_of_memory` and fail if no rule resolves it.
    /// (The optimizer normally never emits this; it exists so tests can
    /// exercise the failure path.)
    Fail,
    /// Incremental Left Flush: on overflow, pause the left input, flush
    /// left-side buckets as needed while draining the right input, then
    /// resume the left — gradually degrading into hybrid hash.
    IncrementalLeftFlush,
    /// Incremental Symmetric Flush: on overflow, pick a bucket and flush it
    /// from *both* hash tables; both inputs keep streaming.
    IncrementalSymmetricFlush,
    /// Naive strategy rejected by the paper ("a conversion from double
    /// pipelined join to hybrid hash join, where we simply flush one hash
    /// table to disk") — kept as an ablation baseline.
    FlushAllLeft,
}

/// One child of a dynamic collector: a wrapper call with its own [`OpId`]
/// so policy rules can activate/deactivate it individually (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectorChildSpec {
    /// The child's operator id (rule subject).
    pub id: OpId,
    /// Source to fetch from.
    pub source: String,
    /// Whether the child starts active or waits for an `activate` action.
    pub initially_active: bool,
}

/// The physical operator algebra (standard operators of §4 plus the two
/// adaptive ones).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OperatorSpec {
    /// Scan a materialized table in the local store (fragment results,
    /// cached data).
    TableScan {
        /// Local-store table name.
        table: String,
    },
    /// Fetch a source relation through its wrapper (atomic fetch query).
    WrapperScan {
        /// Source name in the registry.
        source: String,
        /// Raise a `timeout` event if no tuple arrives for this long.
        timeout_ms: Option<u64>,
        /// Prefetch buffer size in tuples (None = direct pull).
        prefetch: Option<usize>,
    },
    /// Selection.
    Select {
        /// Input operator.
        input: Box<OperatorNode>,
        /// Filter predicate.
        predicate: Predicate,
    },
    /// Projection onto named columns.
    Project {
        /// Input operator.
        input: Box<OperatorNode>,
        /// Output columns (possibly qualified names).
        columns: Vec<String>,
    },
    /// Equi-join. For asymmetric kinds the **right child is the inner
    /// (build) relation** — the one loaded into the hash table.
    Join {
        /// Outer / left child (probe side for hybrid hash).
        left: Box<OperatorNode>,
        /// Inner / right child (build side for hybrid hash).
        right: Box<OperatorNode>,
        /// Join column in the left child's schema.
        left_key: String,
        /// Join column in the right child's schema.
        right_key: String,
        /// Physical algorithm.
        kind: JoinKind,
        /// Overflow strategy (meaningful for `DoublePipelined`).
        overflow: OverflowMethod,
    },
    /// Dependent join (§4): for each left tuple, probe a source that
    /// semantically requires a binding. The engine fetches the source once,
    /// builds an index on `probe_col`, and probes with `bind_col`.
    DependentJoin {
        /// Driving input.
        left: Box<OperatorNode>,
        /// Source probed per binding.
        source: String,
        /// Binding column in the left schema.
        bind_col: String,
        /// Column of the source matched against the binding.
        probe_col: String,
    },
    /// Standard union (baseline for the collector). Schemas must be
    /// arity-compatible.
    Union {
        /// Input operators.
        inputs: Vec<OperatorNode>,
    },
    /// Partitioned exchange: hash-partition the input join's two sides by
    /// their join-key prehash and run `partitions` parallel instances of
    /// the join, merging output batches through an order-insensitive
    /// union. The input must be a hash-partitionable `Join`
    /// (double-pipelined, hybrid or Grace hash); other inputs execute as a
    /// transparent passthrough. The optimizer chooses `partitions` from
    /// catalog cardinalities, capped by the configured parallelism.
    Exchange {
        /// The join to parallelize.
        input: Box<OperatorNode>,
        /// Number of parallel partition instances (1 = passthrough).
        partitions: usize,
    },
    /// Dynamic collector (§4.1): policy-driven union over overlapping
    /// sources. The policy is expressed as rules owned by the collector and
    /// its children in the enclosing fragment.
    Collector {
        /// Children (wrapper calls) with their own ids.
        children: Vec<CollectorChildSpec>,
        /// Stop after this many tuples even if children remain active
        /// (policies like "first source to deliver the full data set
        /// wins"). `None` = drain all active children.
        quota: Option<usize>,
        /// Raise a `timeout(child)` event when an active child delivers
        /// nothing for this long — the trigger for fallback policies.
        child_timeout_ms: Option<u64>,
    },
}

/// A node in a fragment's operator tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorNode {
    /// Unique id within the plan.
    pub id: OpId,
    /// Operator + implementation + children.
    pub spec: OperatorSpec,
    /// Memory allocated to the operator in bytes (§3.1.1 annotation 4).
    pub memory_budget: Option<usize>,
    /// Optimizer's estimate of result cardinality (§3.1.1 annotation 5).
    pub est_cardinality: Option<f64>,
}

impl OperatorNode {
    /// Node with default annotations.
    pub fn new(id: OpId, spec: OperatorSpec) -> Self {
        OperatorNode {
            id,
            spec,
            memory_budget: None,
            est_cardinality: None,
        }
    }

    /// Attach a memory budget.
    pub fn with_memory(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Attach a cardinality estimate.
    pub fn with_est_cardinality(mut self, card: f64) -> Self {
        self.est_cardinality = Some(card);
        self
    }

    /// Direct children, in order.
    pub fn children(&self) -> Vec<&OperatorNode> {
        match &self.spec {
            OperatorSpec::Select { input, .. }
            | OperatorSpec::Project { input, .. }
            | OperatorSpec::Exchange { input, .. } => {
                vec![input]
            }
            OperatorSpec::Join { left, right, .. } => vec![left, right],
            OperatorSpec::DependentJoin { left, .. } => vec![left],
            OperatorSpec::Union { inputs } => inputs.iter().collect(),
            OperatorSpec::TableScan { .. }
            | OperatorSpec::WrapperScan { .. }
            | OperatorSpec::Collector { .. } => vec![],
        }
    }

    /// Pre-order walk over the subtree (self first).
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a OperatorNode)) {
        visit(self);
        for c in self.children() {
            c.walk(visit);
        }
    }

    /// All operator ids in the subtree, including collector children
    /// (which are rule subjects but not full nodes).
    pub fn all_ids(&self) -> Vec<OpId> {
        let mut ids = Vec::new();
        self.walk(&mut |n| {
            ids.push(n.id);
            if let OperatorSpec::Collector { children, .. } = &n.spec {
                ids.extend(children.iter().map(|c| c.id));
            }
        });
        ids
    }

    /// Find a node by id in the subtree.
    pub fn find(&self, id: OpId) -> Option<&OperatorNode> {
        if self.id == id {
            return Some(self);
        }
        for c in self.children() {
            if let Some(n) = c.find(id) {
                return Some(n);
            }
        }
        None
    }

    /// Names of all remote sources the subtree reads.
    pub fn sources(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |n| match &n.spec {
            OperatorSpec::WrapperScan { source, .. } => out.push(source.clone()),
            OperatorSpec::DependentJoin { source, .. } => out.push(source.clone()),
            OperatorSpec::Collector { children, .. } => {
                out.extend(children.iter().map(|c| c.source.clone()))
            }
            _ => {}
        });
        out
    }

    /// One-line description for plan printing.
    pub fn label(&self) -> String {
        match &self.spec {
            OperatorSpec::TableScan { table } => format!("scan({table})"),
            OperatorSpec::WrapperScan { source, .. } => format!("wrapper({source})"),
            OperatorSpec::Select { .. } => "select".to_string(),
            OperatorSpec::Project { columns, .. } => format!("project({})", columns.join(",")),
            OperatorSpec::Join {
                kind,
                left_key,
                right_key,
                ..
            } => format!("join[{kind:?}]({left_key}={right_key})"),
            OperatorSpec::DependentJoin {
                source,
                bind_col,
                probe_col,
                ..
            } => format!("depjoin({source}: {bind_col}={probe_col})"),
            OperatorSpec::Union { inputs } => format!("union({})", inputs.len()),
            OperatorSpec::Collector { children, .. } => format!(
                "collector({})",
                children
                    .iter()
                    .map(|c| c.source.as_str())
                    .collect::<Vec<_>>()
                    .join("|")
            ),
            OperatorSpec::Exchange { partitions, .. } => format!("exchange(x{partitions})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(id: u32, src: &str) -> OperatorNode {
        OperatorNode::new(
            OpId(id),
            OperatorSpec::WrapperScan {
                source: src.into(),
                timeout_ms: None,
                prefetch: None,
            },
        )
    }

    fn join(id: u32, l: OperatorNode, r: OperatorNode) -> OperatorNode {
        OperatorNode::new(
            OpId(id),
            OperatorSpec::Join {
                left: Box::new(l),
                right: Box::new(r),
                left_key: "a".into(),
                right_key: "b".into(),
                kind: JoinKind::DoublePipelined,
                overflow: OverflowMethod::IncrementalLeftFlush,
            },
        )
    }

    #[test]
    fn walk_visits_preorder() {
        let tree = join(2, scan(0, "A"), scan(1, "B"));
        let mut seen = Vec::new();
        tree.walk(&mut |n| seen.push(n.id.0));
        assert_eq!(seen, vec![2, 0, 1]);
    }

    #[test]
    fn find_locates_nested_node() {
        let tree = join(4, join(2, scan(0, "A"), scan(1, "B")), scan(3, "C"));
        assert_eq!(tree.find(OpId(1)).unwrap().label(), "wrapper(B)");
        assert!(tree.find(OpId(9)).is_none());
    }

    #[test]
    fn sources_include_collector_children() {
        let coll = OperatorNode::new(
            OpId(5),
            OperatorSpec::Collector {
                children: vec![
                    CollectorChildSpec {
                        id: OpId(6),
                        source: "mirror1".into(),
                        initially_active: true,
                    },
                    CollectorChildSpec {
                        id: OpId(7),
                        source: "mirror2".into(),
                        initially_active: false,
                    },
                ],
                quota: None,
                child_timeout_ms: None,
            },
        );
        let tree = join(8, coll, scan(9, "C"));
        let mut s = tree.sources();
        s.sort();
        assert_eq!(s, vec!["C", "mirror1", "mirror2"]);
        assert!(tree.all_ids().contains(&OpId(6)));
    }

    #[test]
    fn annotations_attach() {
        let n = scan(0, "A").with_memory(1024).with_est_cardinality(50.0);
        assert_eq!(n.memory_budget, Some(1024));
        assert_eq!(n.est_cardinality, Some(50.0));
    }

    #[test]
    fn symmetry_flag() {
        assert!(JoinKind::DoublePipelined.is_symmetric());
        assert!(!JoinKind::HybridHash.is_symmetric());
    }
}
