//! # tukwila-plan
//!
//! Query execution plans as the Tukwila optimizer produces and the execution
//! engine consumes (§3.1):
//!
//! * a plan is a **partially-ordered set of [`Fragment`]s** plus a set of
//!   global [`Rule`]s;
//! * a fragment is a **fully pipelined tree of physical operators** plus
//!   local rules; at its end, results materialize and the rest of the plan
//!   can be re-optimized or rescheduled;
//! * every operator node records the five annotations of §3.1.1: algebraic
//!   operator, physical implementation, children, memory allocation, and
//!   estimated result cardinality;
//! * rules are the quintuple of §3.1.2 — *(name, event, condition, actions,
//!   owner)* — with the paper's semantics: triggering requires an active
//!   rule with an active owner; firing once deactivates the rule; all of a
//!   rule's actions execute before the next event is processed.
//!
//! The crate also provides the static rule-conflict check the paper requires
//! ("no two rules may ever be active such that one rule negates the effect
//! of the other and both can be fired simultaneously") in
//! [`validate::validate_plan`].

pub mod builder;
pub mod diag;
pub mod ids;
pub mod ops;
pub mod parse;
pub mod plan;
pub mod predicate;
pub mod rules;
pub mod text;
pub mod validate;

pub use builder::PlanBuilder;
pub use diag::{Diagnostic, Report, Severity, Span};
pub use ids::{FragmentId, OpId};
pub use ops::{CollectorChildSpec, JoinKind, OperatorNode, OperatorSpec, OverflowMethod};
pub use parse::{parse_plan, parse_plan_unchecked};
pub use plan::{Fragment, QueryPlan};
pub use predicate::{CmpOp, Predicate};
pub use rules::{
    Action, Condition, Event, EventKind, EventPattern, OpState, Quantity, QuantityProvider, Rule,
    SubjectRef,
};
pub use text::print_plan;
pub use validate::{analyze_rules, analyze_structure, validate_plan};
