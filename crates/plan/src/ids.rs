//! Identifiers for plan elements.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies a physical operator node within one query plan. Stable across
/// re-optimization *of the same node* is not required — the optimizer remaps
/// ids when it replans — but ids are unique within a plan and the event
/// system routes by them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Identifies a fragment within one query plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FragmentId(pub u32);

impl fmt::Display for FragmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frag{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(OpId(3).to_string(), "op3");
        assert_eq!(FragmentId(1).to_string(), "frag1");
    }

    #[test]
    fn ordering_by_number() {
        assert!(OpId(2) < OpId(10));
        assert!(FragmentId(0) < FragmentId(1));
    }
}
