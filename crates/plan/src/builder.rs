//! Fluent plan construction.
//!
//! The optimizer, the tests, and the benchmark harness all build plans; the
//! builder centralizes id allocation so operator and fragment ids stay
//! unique within a plan (a [`crate::validate::validate_plan`] invariant).

use crate::ids::{FragmentId, OpId};
use crate::ops::{CollectorChildSpec, JoinKind, OperatorNode, OperatorSpec, OverflowMethod};
use crate::plan::{Fragment, QueryPlan};
use crate::predicate::Predicate;

/// Allocates ids and assembles fragments into a [`QueryPlan`].
#[derive(Debug, Default)]
pub struct PlanBuilder {
    next_op: u32,
    next_fragment: u32,
    fragments: Vec<Fragment>,
    dependencies: Vec<(FragmentId, FragmentId)>,
}

impl PlanBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate an operator id.
    pub fn op_id(&mut self) -> OpId {
        let id = OpId(self.next_op);
        self.next_op += 1;
        id
    }

    /// Local-store table scan.
    pub fn table_scan(&mut self, table: &str) -> OperatorNode {
        let id = self.op_id();
        OperatorNode::new(
            id,
            OperatorSpec::TableScan {
                table: table.to_string(),
            },
        )
    }

    /// Wrapper scan with no timeout and direct pull.
    pub fn wrapper_scan(&mut self, source: &str) -> OperatorNode {
        self.wrapper_scan_opts(source, None, None)
    }

    /// Wrapper scan with timeout / prefetch options.
    pub fn wrapper_scan_opts(
        &mut self,
        source: &str,
        timeout_ms: Option<u64>,
        prefetch: Option<usize>,
    ) -> OperatorNode {
        let id = self.op_id();
        OperatorNode::new(
            id,
            OperatorSpec::WrapperScan {
                source: source.to_string(),
                timeout_ms,
                prefetch,
            },
        )
    }

    /// Selection.
    pub fn select(&mut self, input: OperatorNode, predicate: Predicate) -> OperatorNode {
        let id = self.op_id();
        OperatorNode::new(
            id,
            OperatorSpec::Select {
                input: Box::new(input),
                predicate,
            },
        )
    }

    /// Projection.
    pub fn project(&mut self, input: OperatorNode, columns: &[&str]) -> OperatorNode {
        let id = self.op_id();
        OperatorNode::new(
            id,
            OperatorSpec::Project {
                input: Box::new(input),
                columns: columns.iter().map(|c| c.to_string()).collect(),
            },
        )
    }

    /// Equi-join of a given kind. Right child is the inner/build side for
    /// asymmetric kinds.
    pub fn join(
        &mut self,
        kind: JoinKind,
        left: OperatorNode,
        right: OperatorNode,
        left_key: &str,
        right_key: &str,
    ) -> OperatorNode {
        let id = self.op_id();
        OperatorNode::new(
            id,
            OperatorSpec::Join {
                left: Box::new(left),
                right: Box::new(right),
                left_key: left_key.to_string(),
                right_key: right_key.to_string(),
                kind,
                overflow: match kind {
                    JoinKind::DoublePipelined => OverflowMethod::IncrementalLeftFlush,
                    _ => OverflowMethod::Fail,
                },
            },
        )
    }

    /// Double pipelined join with an explicit overflow method.
    pub fn dpj(
        &mut self,
        left: OperatorNode,
        right: OperatorNode,
        left_key: &str,
        right_key: &str,
        overflow: OverflowMethod,
    ) -> OperatorNode {
        let mut node = self.join(JoinKind::DoublePipelined, left, right, left_key, right_key);
        if let OperatorSpec::Join { overflow: o, .. } = &mut node.spec {
            *o = overflow;
        }
        node
    }

    /// Dependent join against a source.
    pub fn dependent_join(
        &mut self,
        left: OperatorNode,
        source: &str,
        bind_col: &str,
        probe_col: &str,
    ) -> OperatorNode {
        let id = self.op_id();
        OperatorNode::new(
            id,
            OperatorSpec::DependentJoin {
                left: Box::new(left),
                source: source.to_string(),
                bind_col: bind_col.to_string(),
                probe_col: probe_col.to_string(),
            },
        )
    }

    /// Standard union.
    pub fn union(&mut self, inputs: Vec<OperatorNode>) -> OperatorNode {
        let id = self.op_id();
        OperatorNode::new(id, OperatorSpec::Union { inputs })
    }

    /// Partitioned exchange over a join: run `partitions` parallel
    /// instances of `input`, hash-partitioned on the join keys.
    pub fn exchange(&mut self, input: OperatorNode, partitions: usize) -> OperatorNode {
        let id = self.op_id();
        OperatorNode::new(
            id,
            OperatorSpec::Exchange {
                input: Box::new(input),
                partitions: partitions.max(1),
            },
        )
    }

    /// Dynamic collector over sources; returns the node and the child ids
    /// (for policy rules). `active` flags which children start active.
    pub fn collector(
        &mut self,
        sources: &[(&str, bool)],
        quota: Option<usize>,
    ) -> (OperatorNode, Vec<OpId>) {
        self.collector_with_timeout(sources, quota, None)
    }

    /// Dynamic collector with a per-child inactivity timeout.
    pub fn collector_with_timeout(
        &mut self,
        sources: &[(&str, bool)],
        quota: Option<usize>,
        child_timeout_ms: Option<u64>,
    ) -> (OperatorNode, Vec<OpId>) {
        let children: Vec<CollectorChildSpec> = sources
            .iter()
            .map(|(src, active)| CollectorChildSpec {
                id: self.op_id(),
                source: src.to_string(),
                initially_active: *active,
            })
            .collect();
        let ids = children.iter().map(|c| c.id).collect();
        let id = self.op_id();
        (
            OperatorNode::new(
                id,
                OperatorSpec::Collector {
                    children,
                    quota,
                    child_timeout_ms,
                },
            ),
            ids,
        )
    }

    /// Add a fragment materializing `root` as `name`; returns its id.
    pub fn fragment(&mut self, root: OperatorNode, name: &str) -> FragmentId {
        let id = FragmentId(self.next_fragment);
        self.next_fragment += 1;
        self.fragments.push(Fragment::new(id, root, name));
        id
    }

    /// Add a contingent fragment (starts inactive).
    pub fn contingent_fragment(&mut self, root: OperatorNode, name: &str) -> FragmentId {
        let id = self.fragment(root, name);
        if let Some(f) = self.fragments.iter_mut().find(|f| f.id == id) {
            f.initially_active = false;
        }
        id
    }

    /// Attach a local rule to a fragment.
    pub fn add_local_rule(&mut self, frag: FragmentId, rule: crate::rules::Rule) {
        if let Some(f) = self.fragments.iter_mut().find(|f| f.id == frag) {
            f.local_rules.push(rule);
        }
    }

    /// Record a dependency: `after` runs only once `before` completed.
    pub fn depends(&mut self, before: FragmentId, after: FragmentId) {
        self.dependencies.push((before, after));
    }

    /// Assemble the plan with `output` as the answer fragment.
    pub fn build(self, output: FragmentId) -> QueryPlan {
        let mut plan = QueryPlan::new(self.fragments, output);
        plan.dependencies = self.dependencies;
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan("A");
        let s2 = b.wrapper_scan("B");
        let j = b.join(JoinKind::HybridHash, s1, s2, "k", "k");
        let f = b.fragment(j, "out");
        let plan = b.build(f);
        let mut ids = plan.fragments[0].op_ids();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn dpj_sets_overflow() {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan("A");
        let s2 = b.wrapper_scan("B");
        let j = b.dpj(s1, s2, "k", "k", OverflowMethod::IncrementalSymmetricFlush);
        match j.spec {
            OperatorSpec::Join { overflow, kind, .. } => {
                assert_eq!(overflow, OverflowMethod::IncrementalSymmetricFlush);
                assert_eq!(kind, JoinKind::DoublePipelined);
            }
            _ => panic!("not a join"),
        }
    }

    #[test]
    fn collector_children_get_ids() {
        let mut b = PlanBuilder::new();
        let (node, ids) = b.collector(&[("m1", true), ("m2", false)], Some(100));
        assert_eq!(ids.len(), 2);
        assert_ne!(ids[0], ids[1]);
        match node.spec {
            OperatorSpec::Collector {
                children, quota, ..
            } => {
                assert_eq!(children[0].source, "m1");
                assert!(children[0].initially_active);
                assert!(!children[1].initially_active);
                assert_eq!(quota, Some(100));
            }
            _ => panic!("not a collector"),
        }
    }

    #[test]
    fn contingent_fragment_inactive() {
        let mut b = PlanBuilder::new();
        let s = b.wrapper_scan("A");
        let f = b.contingent_fragment(s, "alt");
        let s2 = b.wrapper_scan("B");
        let f2 = b.fragment(s2, "main");
        b.depends(f2, f);
        let plan = b.build(f2);
        assert!(!plan.fragment(f).unwrap().initially_active);
        assert!(plan.fragment(f2).unwrap().initially_active);
        assert_eq!(plan.dependencies, vec![(f2, f)]);
    }
}
