//! Fragments and whole query plans (§3.1).

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::ids::{FragmentId, OpId};
use crate::ops::OperatorNode;
use crate::rules::Rule;

/// A fully pipelined unit of execution: an operator tree plus local rules.
/// At the end of a fragment, pipelines terminate and the result is
/// materialized under [`Fragment::materialize_as`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fragment {
    /// Fragment id (rule subject).
    pub id: FragmentId,
    /// Root of the pipelined operator tree.
    pub root: OperatorNode,
    /// Name under which the result materializes in the local store.
    pub materialize_as: String,
    /// Whether the fragment is eligible to run from the start (contingent
    /// fragments start inactive and are enabled by `activate` actions —
    /// choose-node behaviour, §3.1.2 "contingent planning").
    pub initially_active: bool,
    /// Rules scoped to this fragment.
    pub local_rules: Vec<Rule>,
}

impl Fragment {
    /// Build an initially-active fragment with no rules.
    pub fn new(id: FragmentId, root: OperatorNode, materialize_as: impl Into<String>) -> Self {
        Fragment {
            id,
            root,
            materialize_as: materialize_as.into(),
            initially_active: true,
            local_rules: Vec::new(),
        }
    }

    /// Add a local rule.
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.local_rules.push(rule);
        self
    }

    /// Mark the fragment as contingent (starts inactive).
    pub fn contingent(mut self) -> Self {
        self.initially_active = false;
        self
    }

    /// All operator ids in the fragment.
    pub fn op_ids(&self) -> Vec<OpId> {
        self.root.all_ids()
    }
}

/// A Tukwila query execution plan: a partially-ordered set of fragments and
/// a set of global rules. Fragments unrelated in the partial order may
/// execute in parallel (§3.1); fragments with `initially_active == false`
/// wait for a rule to activate them.
///
/// A plan may be **partial** (§3): `complete == false` means the optimizer
/// deliberately planned only the first steps and must be re-invoked when the
/// planned fragments finish.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The fragments, in creation order.
    pub fragments: Vec<Fragment>,
    /// Partial order: `(before, after)` — `after` may not start until
    /// `before` completed.
    pub dependencies: Vec<(FragmentId, FragmentId)>,
    /// Plan-wide rules.
    pub global_rules: Vec<Rule>,
    /// The fragment whose output is the query answer (for a partial plan,
    /// the last planned fragment).
    pub output: FragmentId,
    /// False if this is a partial plan that requires re-invoking the
    /// optimizer after the planned fragments complete.
    pub complete: bool,
}

impl QueryPlan {
    /// Build a complete plan.
    pub fn new(fragments: Vec<Fragment>, output: FragmentId) -> Self {
        QueryPlan {
            fragments,
            dependencies: Vec::new(),
            global_rules: Vec::new(),
            output,
            complete: true,
        }
    }

    /// Mark as partial.
    pub fn partial(mut self) -> Self {
        self.complete = false;
        self
    }

    /// Add a dependency edge.
    pub fn with_dependency(mut self, before: FragmentId, after: FragmentId) -> Self {
        self.dependencies.push((before, after));
        self
    }

    /// Add a global rule.
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.global_rules.push(rule);
        self
    }

    /// Fragment lookup.
    pub fn fragment(&self, id: FragmentId) -> Option<&Fragment> {
        self.fragments.iter().find(|f| f.id == id)
    }

    /// All rules (global then per-fragment local).
    pub fn all_rules(&self) -> Vec<&Rule> {
        self.global_rules
            .iter()
            .chain(self.fragments.iter().flat_map(|f| f.local_rules.iter()))
            .collect()
    }

    /// Fragments ready to run: active, not yet completed, all predecessors
    /// completed. `completed` holds finished fragment ids; `active` the
    /// current activation set.
    pub fn ready_fragments(
        &self,
        completed: &BTreeSet<FragmentId>,
        active: &dyn Fn(FragmentId) -> bool,
    ) -> Vec<FragmentId> {
        self.fragments
            .iter()
            .filter(|f| !completed.contains(&f.id))
            .filter(|f| active(f.id))
            .filter(|f| {
                self.dependencies
                    .iter()
                    .filter(|(_, after)| *after == f.id)
                    .all(|(before, _)| completed.contains(before))
            })
            .map(|f| f.id)
            .collect()
    }

    /// Whether the dependency graph is acyclic (topological check).
    pub fn is_acyclic(&self) -> bool {
        let mut indegree: HashMap<FragmentId, usize> =
            self.fragments.iter().map(|f| (f.id, 0)).collect();
        for (_, after) in &self.dependencies {
            if let Some(d) = indegree.get_mut(after) {
                *d += 1;
            }
        }
        let mut queue: Vec<FragmentId> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        let mut seen = 0;
        while let Some(id) = queue.pop() {
            seen += 1;
            for (before, after) in &self.dependencies {
                if *before == id {
                    if let Some(d) = indegree.get_mut(after) {
                        *d -= 1;
                        if *d == 0 {
                            queue.push(*after);
                        }
                    }
                }
            }
        }
        seen == self.fragments.len()
    }

    /// Total number of operators across fragments.
    pub fn op_count(&self) -> usize {
        self.fragments.iter().map(|f| f.op_ids().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OperatorSpec;

    fn scan(id: u32, table: &str) -> OperatorNode {
        OperatorNode::new(
            OpId(id),
            OperatorSpec::TableScan {
                table: table.into(),
            },
        )
    }

    fn two_fragment_plan() -> QueryPlan {
        let f0 = Fragment::new(FragmentId(0), scan(0, "a"), "tmp0");
        let f1 = Fragment::new(FragmentId(1), scan(1, "tmp0"), "out");
        QueryPlan::new(vec![f0, f1], FragmentId(1)).with_dependency(FragmentId(0), FragmentId(1))
    }

    #[test]
    fn ready_respects_dependencies() {
        let plan = two_fragment_plan();
        let none = BTreeSet::new();
        let all_active = |_id: FragmentId| true;
        assert_eq!(
            plan.ready_fragments(&none, &all_active),
            vec![FragmentId(0)]
        );

        let mut done = BTreeSet::new();
        done.insert(FragmentId(0));
        assert_eq!(
            plan.ready_fragments(&done, &all_active),
            vec![FragmentId(1)]
        );

        done.insert(FragmentId(1));
        assert!(plan.ready_fragments(&done, &all_active).is_empty());
    }

    #[test]
    fn inactive_fragments_not_ready() {
        let plan = two_fragment_plan();
        let none = BTreeSet::new();
        let only_f1 = |id: FragmentId| id == FragmentId(1);
        assert!(plan.ready_fragments(&none, &only_f1).is_empty());
    }

    #[test]
    fn acyclic_detection() {
        let mut plan = two_fragment_plan();
        assert!(plan.is_acyclic());
        plan.dependencies.push((FragmentId(1), FragmentId(0)));
        assert!(!plan.is_acyclic());
    }

    #[test]
    fn contingent_fragments_marked() {
        let f = Fragment::new(FragmentId(2), scan(5, "x"), "alt").contingent();
        assert!(!f.initially_active);
    }

    #[test]
    fn partial_plans_flagged() {
        let plan = two_fragment_plan().partial();
        assert!(!plan.complete);
    }

    #[test]
    fn all_rules_concatenates_global_and_local() {
        use crate::rules::{Rule, SubjectRef};
        let f0 = Fragment::new(FragmentId(0), scan(0, "a"), "tmp0")
            .with_rule(Rule::reschedule_on_timeout(FragmentId(0), OpId(0)));
        let plan = QueryPlan::new(vec![f0], FragmentId(0)).with_rule(Rule::replan_on_misestimate(
            FragmentId(0),
            OpId(0),
            2.0,
        ));
        assert_eq!(plan.all_rules().len(), 2);
        assert!(matches!(plan.all_rules()[0].owner, SubjectRef::Fragment(_)));
    }

    #[test]
    fn op_count_sums_fragments() {
        assert_eq!(two_fragment_plan().op_count(), 2);
    }
}
