//! Selection predicates over tuples.
//!
//! Tukwila's scope is select-project-join queries (§2), so predicates are
//! boolean combinations of column/column and column/literal comparisons.
//! Columns are referenced by (possibly qualified) name and resolved against
//! the input schema at operator-open time; evaluation uses SQL three-valued
//! logic (NULL comparisons are unknown, and unknown rows are filtered out).

use serde::{Deserialize, Serialize};

use tukwila_common::{Bitmap, Column, ColumnarBatch, Result, Schema, Selection, Tuple, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// Display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate over named columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true.
    True,
    /// `col ⋄ literal`
    ColLit {
        /// Column reference (possibly qualified).
        col: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal value.
        value: Value,
    },
    /// `col ⋄ col`
    ColCol {
        /// Left column reference.
        left: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right column reference.
        right: String,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation (SQL semantics: NOT unknown = unknown).
    Not(Box<Predicate>),
}

/// A predicate compiled against a concrete schema (column names resolved to
/// indices) — built once at operator open, evaluated per tuple.
#[derive(Debug, Clone)]
pub enum CompiledPredicate {
    /// Always true.
    True,
    /// Column ⋄ literal.
    ColLit(usize, CmpOp, Value),
    /// Column ⋄ column.
    ColCol(usize, CmpOp, usize),
    /// Conjunction.
    And(Vec<CompiledPredicate>),
    /// Disjunction.
    Or(Vec<CompiledPredicate>),
    /// Negation.
    Not(Box<CompiledPredicate>),
}

impl Predicate {
    /// Conjunction helper that flattens trivial cases.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::And(ps) => flat.extend(ps),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().unwrap(),
            _ => Predicate::And(flat),
        }
    }

    /// `col = literal` helper.
    pub fn eq_lit(col: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::ColLit {
            col: col.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `left = right` (column equality) helper.
    pub fn eq_cols(left: impl Into<String>, right: impl Into<String>) -> Predicate {
        Predicate::ColCol {
            left: left.into(),
            op: CmpOp::Eq,
            right: right.into(),
        }
    }

    /// Resolve column references against `schema`.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledPredicate> {
        Ok(match self {
            Predicate::True => CompiledPredicate::True,
            Predicate::ColLit { col, op, value } => {
                CompiledPredicate::ColLit(schema.index_of(col)?, *op, value.clone())
            }
            Predicate::ColCol { left, op, right } => {
                CompiledPredicate::ColCol(schema.index_of(left)?, *op, schema.index_of(right)?)
            }
            Predicate::And(ps) => CompiledPredicate::And(
                ps.iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Predicate::Or(ps) => CompiledPredicate::Or(
                ps.iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Predicate::Not(p) => CompiledPredicate::Not(Box::new(p.compile(schema)?)),
        })
    }

    /// All column references mentioned (for pushdown analysis).
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::ColLit { col, .. } => out.push(col),
            Predicate::ColCol { left, right, .. } => {
                out.push(left);
                out.push(right);
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }
}

impl CompiledPredicate {
    /// Three-valued evaluation: `Some(true/false)` or `None` (unknown).
    pub fn eval3(&self, t: &Tuple) -> Option<bool> {
        match self {
            CompiledPredicate::True => Some(true),
            CompiledPredicate::ColLit(i, op, v) => t.value(*i).sql_cmp(v).map(|ord| op.eval(ord)),
            CompiledPredicate::ColCol(i, op, j) => {
                t.value(*i).sql_cmp(t.value(*j)).map(|ord| op.eval(ord))
            }
            CompiledPredicate::And(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval3(t) {
                        Some(false) => return Some(false),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            CompiledPredicate::Or(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval3(t) {
                        Some(true) => return Some(true),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            CompiledPredicate::Not(p) => p.eval3(t).map(|b| !b),
        }
    }

    /// WHERE-clause semantics: keep only rows that evaluate to true.
    pub fn matches(&self, t: &Tuple) -> bool {
        self.eval3(t) == Some(true)
    }

    /// Vectorized three-valued evaluation over a columnar batch: one typed
    /// comparison loop per leaf, Kleene-combined as bitmaps, yielding the
    /// [`Selection`] of rows that evaluate to **true** (WHERE semantics).
    ///
    /// Returns `None` when any leaf touches a [`Column::Values`] fallback
    /// column (per-row dynamic types can't be vectorized) — the caller
    /// falls back to the per-tuple path. Statically incomparable typed
    /// combinations (e.g. a `Str` column against an `Int` literal) *are*
    /// handled: every row is unknown, exactly as `sql_cmp` reports per row.
    pub fn eval_batch(&self, batch: &ColumnarBatch) -> Option<Selection> {
        self.eval_mask(batch).map(|m| Selection::from_bitmap(m.t))
    }

    fn eval_mask(&self, batch: &ColumnarBatch) -> Option<TriMask> {
        let n = batch.len();
        match self {
            CompiledPredicate::True => Some(TriMask {
                t: Bitmap::all_set(n),
                u: Bitmap::all_clear(n),
            }),
            CompiledPredicate::ColLit(i, op, v) => col_lit_mask(batch.col(*i), *op, v),
            CompiledPredicate::ColCol(i, op, j) => col_col_mask(batch.col(*i), *op, batch.col(*j)),
            CompiledPredicate::And(ps) => {
                let mut acc = TriMask {
                    t: Bitmap::all_set(n),
                    u: Bitmap::all_clear(n),
                };
                for p in ps {
                    acc = acc.and(&p.eval_mask(batch)?);
                }
                Some(acc)
            }
            CompiledPredicate::Or(ps) => {
                let mut acc = TriMask {
                    t: Bitmap::all_clear(n),
                    u: Bitmap::all_clear(n),
                };
                for p in ps {
                    acc = acc.or(&p.eval_mask(batch)?);
                }
                Some(acc)
            }
            CompiledPredicate::Not(p) => Some(p.eval_mask(batch)?.not()),
        }
    }
}

/// A three-valued result over a batch as two disjoint bitmaps: `t` = rows
/// evaluating true, `u` = rows evaluating unknown (neither = false).
/// Combinators implement Kleene logic exactly as [`CompiledPredicate::eval3`]
/// does per row.
struct TriMask {
    t: Bitmap,
    u: Bitmap,
}

impl TriMask {
    fn all_unknown(n: usize) -> TriMask {
        TriMask {
            t: Bitmap::all_clear(n),
            u: Bitmap::all_set(n),
        }
    }

    /// NOT: true↔false, unknown stays unknown.
    fn not(self) -> TriMask {
        let mut nt = self.t.clone();
        nt.or_assign(&self.u);
        nt.not_assign();
        TriMask { t: nt, u: self.u }
    }

    /// AND: true iff both true; unknown iff neither side is false and not
    /// both are true (false dominates unknown).
    fn and(self, other: &TriMask) -> TriMask {
        let mut t = self.t.clone();
        t.and_assign(&other.t);
        // not-false on each side: t | u
        let mut nf1 = self.t;
        nf1.or_assign(&self.u);
        let mut nf2 = other.t.clone();
        nf2.or_assign(&other.u);
        nf1.and_assign(&nf2);
        let mut not_t = t.clone();
        not_t.not_assign();
        nf1.and_assign(&not_t);
        TriMask { t, u: nf1 }
    }

    /// OR: true iff either true; unknown iff some side unknown and neither
    /// true (true dominates unknown).
    fn or(self, other: &TriMask) -> TriMask {
        let mut t = self.t;
        t.or_assign(&other.t);
        let mut u = self.u;
        u.or_assign(&other.u);
        let mut not_t = t.clone();
        not_t.not_assign();
        u.and_assign(&not_t);
        TriMask { t, u }
    }
}

/// Leaf mask from a comparison loop's true-bitmap and the column validity:
/// NULL rows are unknown, everything else is true/false per the bitmap.
fn leaf_mask(mut t: Bitmap, validity: Option<&Bitmap>) -> TriMask {
    match validity {
        None => {
            let u = Bitmap::all_clear(t.len());
            TriMask { t, u }
        }
        Some(v) => {
            t.and_assign(v); // NULL slots hold type defaults: mask them out
            let mut u = v.clone();
            u.not_assign();
            TriMask { t, u }
        }
    }
}

/// Typed `column ⋄ literal` kernel. `None` = not vectorizable (fallback).
fn col_lit_mask(col: &Column, op: CmpOp, lit: &Value) -> Option<TriMask> {
    let n = col.len();
    if lit.is_null() {
        return Some(TriMask::all_unknown(n));
    }
    // Each arm replicates `Value::sql_cmp` for its statically-known type
    // pair; combinations sql_cmp rejects are all-unknown for every row.
    Some(match (col, lit) {
        (Column::Int64(vals, validity), Value::Int(x)) => {
            let mut t = Bitmap::all_clear(n);
            for (i, v) in vals.iter().enumerate() {
                if op.eval(v.cmp(x)) {
                    t.set(i);
                }
            }
            leaf_mask(t, validity.as_ref())
        }
        (Column::Int64(vals, validity), Value::Double(x)) => {
            let mut t = Bitmap::all_clear(n);
            for (i, v) in vals.iter().enumerate() {
                if op.eval((*v as f64).total_cmp(x)) {
                    t.set(i);
                }
            }
            leaf_mask(t, validity.as_ref())
        }
        (Column::Float64(vals, validity), Value::Double(x)) => {
            let mut t = Bitmap::all_clear(n);
            for (i, v) in vals.iter().enumerate() {
                if op.eval(v.total_cmp(x)) {
                    t.set(i);
                }
            }
            leaf_mask(t, validity.as_ref())
        }
        (Column::Float64(vals, validity), Value::Int(x)) => {
            let rhs = *x as f64;
            let mut t = Bitmap::all_clear(n);
            for (i, v) in vals.iter().enumerate() {
                if op.eval(v.total_cmp(&rhs)) {
                    t.set(i);
                }
            }
            leaf_mask(t, validity.as_ref())
        }
        (Column::Str(vals, validity), Value::Str(x)) => {
            let rhs: &str = x;
            let mut t = Bitmap::all_clear(n);
            for (i, v) in vals.iter().enumerate() {
                if op.eval(v.as_ref().cmp(rhs)) {
                    t.set(i);
                }
            }
            leaf_mask(t, validity.as_ref())
        }
        (Column::Date(vals, validity), Value::Date(x)) => {
            let mut t = Bitmap::all_clear(n);
            for (i, v) in vals.iter().enumerate() {
                if op.eval(v.cmp(x)) {
                    t.set(i);
                }
            }
            leaf_mask(t, validity.as_ref())
        }
        (Column::Values(_), _) => return None, // dynamic types: row fallback
        _ => TriMask::all_unknown(n),          // statically incomparable
    })
}

/// Typed `column ⋄ column` kernel. `None` = not vectorizable (fallback).
fn col_col_mask(left: &Column, op: CmpOp, right: &Column) -> Option<TriMask> {
    let n = left.len();
    debug_assert_eq!(n, right.len());
    fn both_validity(a: Option<&Bitmap>, b: Option<&Bitmap>) -> Option<Bitmap> {
        match (a, b) {
            (None, None) => None,
            (Some(x), None) | (None, Some(x)) => Some(x.clone()),
            (Some(x), Some(y)) => {
                let mut v = x.clone();
                v.and_assign(y);
                Some(v)
            }
        }
    }
    macro_rules! cmp_cols {
        ($lv:expr, $lb:expr, $rv:expr, $rb:expr, $cmp:expr) => {{
            let mut t = Bitmap::all_clear(n);
            for i in 0..n {
                if op.eval($cmp(&$lv[i], &$rv[i])) {
                    t.set(i);
                }
            }
            let v = both_validity($lb.as_ref(), $rb.as_ref());
            leaf_mask(t, v.as_ref())
        }};
    }
    Some(match (left, right) {
        (Column::Int64(lv, lb), Column::Int64(rv, rb)) => {
            cmp_cols!(lv, lb, rv, rb, |a: &i64, b: &i64| a.cmp(b))
        }
        (Column::Float64(lv, lb), Column::Float64(rv, rb)) => {
            cmp_cols!(lv, lb, rv, rb, |a: &f64, b: &f64| a.total_cmp(b))
        }
        (Column::Int64(lv, lb), Column::Float64(rv, rb)) => {
            cmp_cols!(lv, lb, rv, rb, |a: &i64, b: &f64| (*a as f64).total_cmp(b))
        }
        (Column::Float64(lv, lb), Column::Int64(rv, rb)) => {
            cmp_cols!(lv, lb, rv, rb, |a: &f64, b: &i64| a.total_cmp(&(*b as f64)))
        }
        (Column::Str(lv, lb), Column::Str(rv, rb)) => {
            cmp_cols!(
                lv,
                lb,
                rv,
                rb,
                |a: &std::sync::Arc<str>, b: &std::sync::Arc<str>| a.as_ref().cmp(b.as_ref())
            )
        }
        (Column::Date(lv, lb), Column::Date(rv, rb)) => {
            cmp_cols!(lv, lb, rv, rb, |a: &i32, b: &i32| a.cmp(b))
        }
        (Column::Values(_), _) | (_, Column::Values(_)) => return None,
        _ => TriMask::all_unknown(n), // statically incomparable
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_common::{tuple, DataType};

    fn schema() -> Schema {
        Schema::of(
            "r",
            &[
                ("a", DataType::Int),
                ("b", DataType::Int),
                ("s", DataType::Str),
            ],
        )
    }

    #[test]
    fn col_lit_comparisons() {
        let s = schema();
        let p = Predicate::ColLit {
            col: "a".into(),
            op: CmpOp::Gt,
            value: Value::Int(5),
        }
        .compile(&s)
        .unwrap();
        assert!(p.matches(&tuple![6, 0, "x"]));
        assert!(!p.matches(&tuple![5, 0, "x"]));
    }

    #[test]
    fn col_col_equality() {
        let s = schema();
        let p = Predicate::eq_cols("a", "b").compile(&s).unwrap();
        assert!(p.matches(&tuple![3, 3, "x"]));
        assert!(!p.matches(&tuple![3, 4, "x"]));
    }

    #[test]
    fn null_is_filtered_by_where_semantics() {
        let s = schema();
        let p = Predicate::eq_lit("a", 1i64).compile(&s).unwrap();
        let t = Tuple::new(vec![Value::Null, Value::Int(1), Value::str("x")]);
        assert_eq!(p.eval3(&t), None);
        assert!(!p.matches(&t));
        // NOT of unknown is still unknown → still filtered
        let np = Predicate::Not(Box::new(Predicate::eq_lit("a", 1i64)))
            .compile(&s)
            .unwrap();
        assert!(!np.matches(&t));
    }

    #[test]
    fn and_short_circuits_false_over_unknown() {
        let s = schema();
        let p = Predicate::And(vec![
            Predicate::eq_lit("a", 1i64),
            Predicate::eq_lit("b", 2i64),
        ])
        .compile(&s)
        .unwrap();
        // a is NULL (unknown), b=3 (false) → false, not unknown
        let t = Tuple::new(vec![Value::Null, Value::Int(3), Value::str("x")]);
        assert_eq!(p.eval3(&t), Some(false));
    }

    #[test]
    fn or_true_dominates_unknown() {
        let s = schema();
        let p = Predicate::Or(vec![
            Predicate::eq_lit("a", 1i64),
            Predicate::eq_lit("b", 2i64),
        ])
        .compile(&s)
        .unwrap();
        let t = Tuple::new(vec![Value::Null, Value::Int(2), Value::str("x")]);
        assert_eq!(p.eval3(&t), Some(true));
    }

    #[test]
    fn and_flattening() {
        let p = Predicate::and(vec![
            Predicate::True,
            Predicate::eq_lit("a", 1i64),
            Predicate::and(vec![Predicate::eq_lit("b", 2i64), Predicate::True]),
        ]);
        match &p {
            Predicate::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected flattened And, got {other:?}"),
        }
        assert_eq!(Predicate::and(vec![]), Predicate::True);
    }

    #[test]
    fn unknown_column_fails_compile() {
        assert!(Predicate::eq_lit("zz", 1i64).compile(&schema()).is_err());
    }

    /// Vectorized evaluation must agree with per-row `eval3` on every row
    /// — across types, NULLs, cross-numeric compares, and Kleene
    /// combinators (the `Filter` fast path's correctness contract).
    #[test]
    fn eval_batch_matches_eval3() {
        use tukwila_common::ColumnarBatch;
        let s = Schema::of(
            "r",
            &[
                ("a", DataType::Int),
                ("b", DataType::Int),
                ("d", DataType::Double),
                ("s", DataType::Str),
                ("dt", DataType::Date),
            ],
        );
        let mut rows = Vec::new();
        for i in 0..64i64 {
            let a = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Int(i % 10)
            };
            let b = Value::Int((i * 3) % 10);
            let d = if i % 5 == 0 {
                Value::Null
            } else if i % 11 == 0 {
                Value::Double(-0.0)
            } else {
                Value::Double((i % 8) as f64 / 2.0)
            };
            let st = Value::str(["x", "y", "zz"][(i % 3) as usize]);
            let dt = Value::Date((i % 4) as i32);
            rows.push(Tuple::new(vec![a, b, d, st, dt]));
        }
        let batch = ColumnarBatch::from_rows(&rows);
        let preds = vec![
            Predicate::True,
            Predicate::eq_lit("a", 3i64),
            Predicate::ColLit {
                col: "a".into(),
                op: CmpOp::Gt,
                value: Value::Double(2.5),
            },
            Predicate::ColLit {
                col: "d".into(),
                op: CmpOp::Le,
                value: Value::Int(1),
            },
            Predicate::ColLit {
                col: "d".into(),
                op: CmpOp::Eq,
                value: Value::Double(0.0),
            },
            Predicate::ColLit {
                col: "s".into(),
                op: CmpOp::Ne,
                value: Value::str("y"),
            },
            Predicate::ColLit {
                col: "dt".into(),
                op: CmpOp::Ge,
                value: Value::Date(2),
            },
            // statically incomparable: all-unknown, still vectorized
            Predicate::ColLit {
                col: "s".into(),
                op: CmpOp::Eq,
                value: Value::Int(1),
            },
            // NULL literal: all-unknown
            Predicate::ColLit {
                col: "a".into(),
                op: CmpOp::Eq,
                value: Value::Null,
            },
            Predicate::eq_cols("a", "b"),
            Predicate::ColCol {
                left: "a".into(),
                op: CmpOp::Lt,
                right: "d".into(),
            },
            Predicate::Not(Box::new(Predicate::eq_lit("a", 3i64))),
            Predicate::And(vec![
                Predicate::eq_lit("s", "x"),
                Predicate::ColLit {
                    col: "a".into(),
                    op: CmpOp::Lt,
                    value: Value::Int(5),
                },
            ]),
            Predicate::Or(vec![
                Predicate::eq_lit("a", 1i64),
                Predicate::Not(Box::new(Predicate::ColCol {
                    left: "d".into(),
                    op: CmpOp::Gt,
                    right: "b".into(),
                })),
            ]),
        ];
        for p in preds {
            let c = p.compile(&s).unwrap();
            let sel = c
                .eval_batch(&batch)
                .unwrap_or_else(|| panic!("{p:?} should vectorize"));
            for (i, t) in rows.iter().enumerate() {
                assert_eq!(
                    sel.get(i),
                    c.matches(t),
                    "row {i} disagrees for {p:?} on {t}"
                );
            }
        }
    }

    #[test]
    fn eval_batch_bails_on_values_column() {
        use tukwila_common::ColumnarBatch;
        let s = Schema::of("r", &[("a", DataType::Int)]);
        // mixed types force the Values fallback column
        let rows = vec![tuple![1], tuple!["x"]];
        let batch = ColumnarBatch::from_rows(&rows);
        let c = Predicate::eq_lit("a", 1i64).compile(&s).unwrap();
        assert!(
            c.eval_batch(&batch).is_none(),
            "dynamic column: row fallback"
        );
    }

    #[test]
    fn columns_collected() {
        let p = Predicate::And(vec![
            Predicate::eq_cols("a", "b"),
            Predicate::eq_lit("s", "x"),
        ]);
        assert_eq!(p.columns(), vec!["a", "b", "s"]);
    }
}
