//! Selection predicates over tuples.
//!
//! Tukwila's scope is select-project-join queries (§2), so predicates are
//! boolean combinations of column/column and column/literal comparisons.
//! Columns are referenced by (possibly qualified) name and resolved against
//! the input schema at operator-open time; evaluation uses SQL three-valued
//! logic (NULL comparisons are unknown, and unknown rows are filtered out).

use serde::{Deserialize, Serialize};

use tukwila_common::{Result, Schema, Tuple, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// Display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate over named columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true.
    True,
    /// `col ⋄ literal`
    ColLit {
        /// Column reference (possibly qualified).
        col: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal value.
        value: Value,
    },
    /// `col ⋄ col`
    ColCol {
        /// Left column reference.
        left: String,
        /// Comparison operator.
        op: CmpOp,
        /// Right column reference.
        right: String,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation (SQL semantics: NOT unknown = unknown).
    Not(Box<Predicate>),
}

/// A predicate compiled against a concrete schema (column names resolved to
/// indices) — built once at operator open, evaluated per tuple.
#[derive(Debug, Clone)]
pub enum CompiledPredicate {
    /// Always true.
    True,
    /// Column ⋄ literal.
    ColLit(usize, CmpOp, Value),
    /// Column ⋄ column.
    ColCol(usize, CmpOp, usize),
    /// Conjunction.
    And(Vec<CompiledPredicate>),
    /// Disjunction.
    Or(Vec<CompiledPredicate>),
    /// Negation.
    Not(Box<CompiledPredicate>),
}

impl Predicate {
    /// Conjunction helper that flattens trivial cases.
    pub fn and(preds: Vec<Predicate>) -> Predicate {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Predicate::True => {}
                Predicate::And(ps) => flat.extend(ps),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Predicate::True,
            1 => flat.pop().unwrap(),
            _ => Predicate::And(flat),
        }
    }

    /// `col = literal` helper.
    pub fn eq_lit(col: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::ColLit {
            col: col.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `left = right` (column equality) helper.
    pub fn eq_cols(left: impl Into<String>, right: impl Into<String>) -> Predicate {
        Predicate::ColCol {
            left: left.into(),
            op: CmpOp::Eq,
            right: right.into(),
        }
    }

    /// Resolve column references against `schema`.
    pub fn compile(&self, schema: &Schema) -> Result<CompiledPredicate> {
        Ok(match self {
            Predicate::True => CompiledPredicate::True,
            Predicate::ColLit { col, op, value } => {
                CompiledPredicate::ColLit(schema.index_of(col)?, *op, value.clone())
            }
            Predicate::ColCol { left, op, right } => {
                CompiledPredicate::ColCol(schema.index_of(left)?, *op, schema.index_of(right)?)
            }
            Predicate::And(ps) => CompiledPredicate::And(
                ps.iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Predicate::Or(ps) => CompiledPredicate::Or(
                ps.iter()
                    .map(|p| p.compile(schema))
                    .collect::<Result<_>>()?,
            ),
            Predicate::Not(p) => CompiledPredicate::Not(Box::new(p.compile(schema)?)),
        })
    }

    /// All column references mentioned (for pushdown analysis).
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::ColLit { col, .. } => out.push(col),
            Predicate::ColCol { left, right, .. } => {
                out.push(left);
                out.push(right);
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }
}

impl CompiledPredicate {
    /// Three-valued evaluation: `Some(true/false)` or `None` (unknown).
    pub fn eval3(&self, t: &Tuple) -> Option<bool> {
        match self {
            CompiledPredicate::True => Some(true),
            CompiledPredicate::ColLit(i, op, v) => t.value(*i).sql_cmp(v).map(|ord| op.eval(ord)),
            CompiledPredicate::ColCol(i, op, j) => {
                t.value(*i).sql_cmp(t.value(*j)).map(|ord| op.eval(ord))
            }
            CompiledPredicate::And(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval3(t) {
                        Some(false) => return Some(false),
                        None => unknown = true,
                        Some(true) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            CompiledPredicate::Or(ps) => {
                let mut unknown = false;
                for p in ps {
                    match p.eval3(t) {
                        Some(true) => return Some(true),
                        None => unknown = true,
                        Some(false) => {}
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            CompiledPredicate::Not(p) => p.eval3(t).map(|b| !b),
        }
    }

    /// WHERE-clause semantics: keep only rows that evaluate to true.
    pub fn matches(&self, t: &Tuple) -> bool {
        self.eval3(t) == Some(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_common::{tuple, DataType};

    fn schema() -> Schema {
        Schema::of(
            "r",
            &[
                ("a", DataType::Int),
                ("b", DataType::Int),
                ("s", DataType::Str),
            ],
        )
    }

    #[test]
    fn col_lit_comparisons() {
        let s = schema();
        let p = Predicate::ColLit {
            col: "a".into(),
            op: CmpOp::Gt,
            value: Value::Int(5),
        }
        .compile(&s)
        .unwrap();
        assert!(p.matches(&tuple![6, 0, "x"]));
        assert!(!p.matches(&tuple![5, 0, "x"]));
    }

    #[test]
    fn col_col_equality() {
        let s = schema();
        let p = Predicate::eq_cols("a", "b").compile(&s).unwrap();
        assert!(p.matches(&tuple![3, 3, "x"]));
        assert!(!p.matches(&tuple![3, 4, "x"]));
    }

    #[test]
    fn null_is_filtered_by_where_semantics() {
        let s = schema();
        let p = Predicate::eq_lit("a", 1i64).compile(&s).unwrap();
        let t = Tuple::new(vec![Value::Null, Value::Int(1), Value::str("x")]);
        assert_eq!(p.eval3(&t), None);
        assert!(!p.matches(&t));
        // NOT of unknown is still unknown → still filtered
        let np = Predicate::Not(Box::new(Predicate::eq_lit("a", 1i64)))
            .compile(&s)
            .unwrap();
        assert!(!np.matches(&t));
    }

    #[test]
    fn and_short_circuits_false_over_unknown() {
        let s = schema();
        let p = Predicate::And(vec![
            Predicate::eq_lit("a", 1i64),
            Predicate::eq_lit("b", 2i64),
        ])
        .compile(&s)
        .unwrap();
        // a is NULL (unknown), b=3 (false) → false, not unknown
        let t = Tuple::new(vec![Value::Null, Value::Int(3), Value::str("x")]);
        assert_eq!(p.eval3(&t), Some(false));
    }

    #[test]
    fn or_true_dominates_unknown() {
        let s = schema();
        let p = Predicate::Or(vec![
            Predicate::eq_lit("a", 1i64),
            Predicate::eq_lit("b", 2i64),
        ])
        .compile(&s)
        .unwrap();
        let t = Tuple::new(vec![Value::Null, Value::Int(2), Value::str("x")]);
        assert_eq!(p.eval3(&t), Some(true));
    }

    #[test]
    fn and_flattening() {
        let p = Predicate::and(vec![
            Predicate::True,
            Predicate::eq_lit("a", 1i64),
            Predicate::and(vec![Predicate::eq_lit("b", 2i64), Predicate::True]),
        ]);
        match &p {
            Predicate::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected flattened And, got {other:?}"),
        }
        assert_eq!(Predicate::and(vec![]), Predicate::True);
    }

    #[test]
    fn unknown_column_fails_compile() {
        assert!(Predicate::eq_lit("zz", 1i64).compile(&schema()).is_err());
    }

    #[test]
    fn columns_collected() {
        let p = Predicate::And(vec![
            Predicate::eq_cols("a", "b"),
            Predicate::eq_lit("s", "x"),
        ]);
        assert_eq!(p.columns(), vec!["a", "b", "s"]);
    }
}
