//! Human-readable plan rendering.
//!
//! The paper's engine "accepts plans which are specified in an XML-based
//! query plan language which is human-writable" (§5). We provide the
//! rendering half here — a stable, indented textual form used by plan
//! debugging, golden tests, and EXPERIMENTS.md listings. (Plans are also
//! serde-serializable for machine round-trips.)

use std::fmt::Write as _;

use tukwila_common::Value;

use crate::ids::FragmentId;
use crate::ops::{JoinKind, OperatorNode, OperatorSpec, OverflowMethod};
use crate::plan::{Fragment, QueryPlan};
use crate::predicate::Predicate;
use crate::rules::{Action, Condition, EventKind, OpState, Quantity, Rule, SubjectRef};

/// Render a whole plan.
pub fn render_plan(plan: &QueryPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan(output={}, complete={})",
        plan.output, plan.complete
    );
    for (before, after) in &plan.dependencies {
        let _ = writeln!(out, "  after({before} -> {after})");
    }
    for rule in &plan.global_rules {
        let _ = writeln!(out, "  {}", render_rule(rule));
    }
    for f in &plan.fragments {
        out.push_str(&render_fragment(f));
    }
    out
}

/// Render one fragment.
pub fn render_fragment(f: &Fragment) -> String {
    let mut out = String::new();
    let active = if f.initially_active {
        ""
    } else {
        " [contingent]"
    };
    let _ = writeln!(
        out,
        "  fragment {} -> `{}`{}",
        f.id, f.materialize_as, active
    );
    for rule in &f.local_rules {
        let _ = writeln!(out, "    {}", render_rule(rule));
    }
    render_node(&f.root, 2, &mut out);
    out
}

fn render_node(node: &OperatorNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let mut annotations = Vec::new();
    if let Some(m) = node.memory_budget {
        annotations.push(format!("mem={m}"));
    }
    if let Some(c) = node.est_cardinality {
        annotations.push(format!("est={c:.0}"));
    }
    let ann = if annotations.is_empty() {
        String::new()
    } else {
        format!(" [{}]", annotations.join(", "))
    };
    let _ = writeln!(out, "{indent}{} {}{}", node.id, node.label(), ann);
    if let OperatorSpec::Collector { children, .. } = &node.spec {
        for c in children {
            let act = if c.initially_active {
                "active"
            } else {
                "standby"
            };
            let _ = writeln!(out, "{indent}  {} child({}) [{act}]", c.id, c.source);
        }
    }
    for c in node.children() {
        render_node(c, depth + 1, out);
    }
}

/// Render one rule in the paper's `when … if … then …` form.
pub fn render_rule(rule: &Rule) -> String {
    let actions: Vec<String> = rule.actions.iter().map(render_action).collect();
    format!(
        "rule `{}` (owner {}): when {:?}({}{}) if {:?} then [{}]",
        rule.name,
        rule.owner,
        rule.event.kind,
        rule.event.subject,
        rule.event
            .value
            .map(|v| format!(", {v}"))
            .unwrap_or_default(),
        rule.condition,
        actions.join("; ")
    )
}

fn render_action(a: &Action) -> String {
    match a {
        Action::SetOverflowMethod { op, method } => format!("set_overflow({op}, {method:?})"),
        Action::AlterMemory { op, bytes } => format!("alter_memory({op}, {bytes})"),
        Action::Activate(s) => format!("activate({s})"),
        Action::Deactivate(s) => format!("deactivate({s})"),
        Action::Reschedule => "reschedule".to_string(),
        Action::Replan => "replan".to_string(),
        Action::ReturnError(m) => format!("error({m})"),
    }
}

// ---- parseable s-expression printer ----
//
// `print_plan` is the inverse of `crate::parse::parse_plan`: it emits the
// grammar documented there, so `parse(print(parse(text)))` is a fixpoint
// for any text the parser accepts. Annotations the grammar cannot express
// (estimated cardinalities, memory budgets on non-join nodes, non-default
// overflow methods on non-DPJ joins) are dropped.

/// The fragment name `print_plan` uses for a fragment: derived from its
/// materialization name when it follows the parser's `mat_<name>`
/// convention, otherwise `f<id>`.
fn frag_name(f: &Fragment) -> String {
    match f.materialize_as.strip_prefix("mat_") {
        Some(rest) if !rest.is_empty() => rest.to_string(),
        _ => format!("f{}", f.id.0),
    }
}

fn print_subject(s: SubjectRef, names: &[(FragmentId, String)]) -> String {
    match s {
        SubjectRef::Op(id) => format!("op{}", id.0),
        SubjectRef::Fragment(id) => names
            .iter()
            .find(|(fid, _)| *fid == id)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("f{}", id.0)),
    }
}

fn print_overflow(m: OverflowMethod) -> &'static str {
    match m {
        OverflowMethod::IncrementalLeftFlush => "left",
        OverflowMethod::IncrementalSymmetricFlush => "symmetric",
        OverflowMethod::FlushAllLeft => "flushall",
        OverflowMethod::Fail => "fail",
    }
}

fn print_literal(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("{i}"),
        Value::Double(f) => format!("{f:?}"),
        Value::Str(s) => format!("\"{s}\""),
        Value::Date(d) => format!("date:{d}"),
        Value::Null => "null".to_string(),
    }
}

fn print_pred(p: &Predicate) -> String {
    match p {
        Predicate::True => "true".to_string(),
        Predicate::ColLit { col, op, value } => {
            format!("(lit {col} {} {})", op.symbol(), print_literal(value))
        }
        Predicate::ColCol { left, op, right } => {
            format!("(cols {left} {} {right})", op.symbol())
        }
        Predicate::And(ps) => {
            let inner: Vec<String> = ps.iter().map(print_pred).collect();
            format!("(and {})", inner.join(" "))
        }
        Predicate::Or(ps) => {
            let inner: Vec<String> = ps.iter().map(print_pred).collect();
            format!("(or {})", inner.join(" "))
        }
        Predicate::Not(inner) => format!("(not {})", print_pred(inner)),
    }
}

fn print_node(node: &OperatorNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    match &node.spec {
        OperatorSpec::TableScan { table } => {
            let _ = write!(out, "{indent}(scan {table})");
        }
        OperatorSpec::WrapperScan {
            source,
            timeout_ms,
            prefetch,
        } => {
            let _ = write!(out, "{indent}(wrapper {source}");
            if let Some(t) = timeout_ms {
                let _ = write!(out, " :timeout {t}");
            }
            if let Some(p) = prefetch {
                let _ = write!(out, " :prefetch {p}");
            }
            out.push(')');
        }
        OperatorSpec::Select { input, predicate } => {
            let _ = writeln!(out, "{indent}(select {}", print_pred(predicate));
            print_node(input, depth + 1, out);
            out.push(')');
        }
        OperatorSpec::Project { input, columns } => {
            let _ = writeln!(out, "{indent}(project [{}]", columns.join(", "));
            print_node(input, depth + 1, out);
            out.push(')');
        }
        OperatorSpec::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            overflow,
        } => {
            let kw = match kind {
                JoinKind::DoublePipelined => "dpj",
                JoinKind::HybridHash => "hybrid",
                JoinKind::GraceHash => "grace",
                JoinKind::NestedLoops => "nlj",
                JoinKind::SortMerge => "smj",
            };
            let _ = write!(out, "{indent}(join {kw} {left_key} = {right_key}");
            if let Some(m) = node.memory_budget {
                let _ = write!(out, " :mem {m}");
            }
            if *kind == JoinKind::DoublePipelined {
                let _ = write!(out, " :overflow {}", print_overflow(*overflow));
            }
            out.push('\n');
            print_node(left, depth + 1, out);
            out.push('\n');
            print_node(right, depth + 1, out);
            out.push(')');
        }
        OperatorSpec::DependentJoin {
            left,
            source,
            bind_col,
            probe_col,
        } => {
            let _ = writeln!(out, "{indent}(depjoin {source} {bind_col} = {probe_col}");
            print_node(left, depth + 1, out);
            out.push(')');
        }
        OperatorSpec::Union { inputs } => {
            let _ = write!(out, "{indent}(union");
            for i in inputs {
                out.push('\n');
                print_node(i, depth + 1, out);
            }
            out.push(')');
        }
        OperatorSpec::Exchange { input, partitions } => {
            let _ = writeln!(out, "{indent}(exchange {partitions}");
            print_node(input, depth + 1, out);
            out.push(')');
        }
        OperatorSpec::Collector {
            children,
            quota,
            child_timeout_ms,
        } => {
            let _ = write!(out, "{indent}(collector");
            if let Some(q) = quota {
                let _ = write!(out, " :quota {q}");
            }
            if let Some(t) = child_timeout_ms {
                let _ = write!(out, " :timeout {t}");
            }
            for c in children {
                let standby = if c.initially_active { "" } else { " standby" };
                let _ = write!(out, "\n{indent}  (child {}{standby})", c.source);
            }
            out.push(')');
        }
    }
}

fn print_qty(q: &Quantity, names: &[(FragmentId, String)]) -> String {
    match q {
        Quantity::Const(c) => format!("{c}"),
        Quantity::Card(s) => format!("(card {})", print_subject(*s, names)),
        Quantity::EstCard(s) => format!("(est {})", print_subject(*s, names)),
        Quantity::TimeWaitingMs(s) => format!("(wait {})", print_subject(*s, names)),
        Quantity::MemoryUsed(s) => format!("(mem {})", print_subject(*s, names)),
        Quantity::MemoryBudget(s) => format!("(budget {})", print_subject(*s, names)),
        Quantity::Scaled(f, inner) => format!("(scale {f} {})", print_qty(inner, names)),
    }
}

fn print_cond(c: &Condition, names: &[(FragmentId, String)]) -> String {
    match c {
        Condition::True => "true".to_string(),
        Condition::False => "false".to_string(),
        Condition::StateIs { subject, state } => {
            let sw = match state {
                OpState::NotStarted => "notstarted",
                OpState::Open => "open",
                OpState::Closed => "closed",
                OpState::Failed => "failed",
                OpState::Deactivated => "deactivated",
            };
            format!("(state {} {sw})", print_subject(*subject, names))
        }
        Condition::Cmp { lhs, op, rhs } => format!(
            "(cmp {} {} {})",
            print_qty(lhs, names),
            op.symbol(),
            print_qty(rhs, names)
        ),
        Condition::And(cs) => {
            let inner: Vec<String> = cs.iter().map(|c| print_cond(c, names)).collect();
            format!("(and {})", inner.join(" "))
        }
        Condition::Or(cs) => {
            let inner: Vec<String> = cs.iter().map(|c| print_cond(c, names)).collect();
            format!("(or {})", inner.join(" "))
        }
        Condition::Not(inner) => format!("(not {})", print_cond(inner, names)),
    }
}

fn print_action(a: &Action, names: &[(FragmentId, String)]) -> String {
    match a {
        Action::Replan => "replan".to_string(),
        Action::Reschedule => "reschedule".to_string(),
        Action::Activate(s) => format!("(activate {})", print_subject(*s, names)),
        Action::Deactivate(s) => format!("(deactivate {})", print_subject(*s, names)),
        Action::ReturnError(m) => format!("(error \"{m}\")"),
        Action::SetOverflowMethod { op, method } => {
            format!("(set-overflow op{} {})", op.0, print_overflow(*method))
        }
        Action::AlterMemory { op, bytes } => format!("(alter-memory op{} {bytes})", op.0),
    }
}

fn print_rule(rule: &Rule, names: &[(FragmentId, String)], indent: &str, out: &mut String) {
    let kw = match rule.event.kind {
        EventKind::Opened => "opened",
        EventKind::Closed => "closed",
        EventKind::Error => "error",
        EventKind::Timeout => "timeout",
        EventKind::OutOfMemory => "oom",
        EventKind::Threshold => "threshold",
    };
    let _ = write!(
        out,
        "{indent}(rule \"{}\" :owner {} :when {kw} {}",
        rule.name,
        print_subject(rule.owner, names),
        print_subject(rule.event.subject, names)
    );
    if let Some(v) = rule.event.value {
        let _ = write!(out, " {v}");
    }
    if rule.condition != Condition::True {
        let _ = write!(out, " :if {}", print_cond(&rule.condition, names));
    }
    if !rule.actions.is_empty() {
        let _ = write!(out, " :do");
        for a in &rule.actions {
            let _ = write!(out, " {}", print_action(a, names));
        }
    }
    out.push(')');
}

/// Print a plan in the parseable s-expression grammar of [`crate::parse`].
/// Inverse of [`crate::parse::parse_plan`] — see the grammar note there.
pub fn print_plan(plan: &QueryPlan) -> String {
    let names: Vec<(FragmentId, String)> = plan
        .fragments
        .iter()
        .map(|f| (f.id, frag_name(f)))
        .collect();
    let mut out = String::new();
    for f in &plan.fragments {
        let name = print_subject(SubjectRef::Fragment(f.id), &names);
        let contingent = if f.initially_active {
            ""
        } else {
            " contingent"
        };
        let _ = writeln!(out, "(fragment {name}{contingent}");
        print_node(&f.root, 1, &mut out);
        for rule in &f.local_rules {
            out.push('\n');
            print_rule(rule, &names, "  ", &mut out);
        }
        out.push_str(")\n");
    }
    for (before, after) in &plan.dependencies {
        let _ = writeln!(
            out,
            "(after {} {})",
            print_subject(SubjectRef::Fragment(*before), &names),
            print_subject(SubjectRef::Fragment(*after), &names)
        );
    }
    for rule in &plan.global_rules {
        print_rule(rule, &names, "", &mut out);
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "(output {})",
        print_subject(SubjectRef::Fragment(plan.output), &names)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::ids::OpId;
    use crate::ops::JoinKind;
    use crate::rules::Rule;

    #[test]
    fn renders_tree_with_annotations() {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan("A").with_est_cardinality(100.0);
        let s2 = b.wrapper_scan("B");
        let j = b
            .join(JoinKind::DoublePipelined, s1, s2, "k", "k")
            .with_memory(4096);
        let f = b.fragment(j, "out");
        let plan = b.build(f);
        let text = render_plan(&plan);
        assert!(text.contains("wrapper(A)"));
        assert!(text.contains("est=100"));
        assert!(text.contains("mem=4096"));
        assert!(text.contains("fragment frag0 -> `out`"));
    }

    #[test]
    fn renders_rules_in_when_if_then_form() {
        let rule = Rule::replan_on_misestimate(crate::ids::FragmentId(1), OpId(7), 2.0);
        let s = render_rule(&rule);
        assert!(s.contains("when Closed"));
        assert!(s.contains("then [replan]"));
    }

    /// parse → print → parse must be the identity on parsed plans.
    fn assert_fixpoint(text: &str) {
        let plan = crate::parse::parse_plan(text).expect("fixture parses");
        let printed = print_plan(&plan);
        let reparsed = crate::parse::parse_plan(&printed)
            .unwrap_or_else(|e| panic!("printed form must reparse: {e}\n{printed}"));
        assert_eq!(plan, reparsed, "print/parse fixpoint broke:\n{printed}");
        assert_eq!(printed, print_plan(&reparsed));
    }

    #[test]
    fn print_parse_fixpoint_exchange() {
        assert_fixpoint(
            r#"
            (fragment f0 (exchange 4 (join dpj k = k :mem 65536 :overflow symmetric
                (wrapper A :timeout 100 :prefetch 64)
                (wrapper B))))
            (fragment f1 (join hybrid a.k = c.k :mem 8192
                (scan mat_f0)
                (wrapper C)))
            (after f0 f1)
            (output f1)
            "#,
        );
    }

    #[test]
    fn print_parse_fixpoint_rules_and_collector() {
        assert_fixpoint(
            r#"
            (fragment main
                (collector :quota 500 :timeout 80
                    (child mirror1)
                    (child mirror2 standby))
                (rule "failover" :owner main :when timeout op0
                    :do (activate op1) (deactivate op0)))
            (fragment alt contingent (wrapper backup))
            (rule "replan-big" :owner main :when closed main
                :if (and (cmp (card op2) > (scale 2.5 (est op2)))
                         (not (state alt open)))
                :do replan)
            (rule "spill" :owner main :when oom op2
                :do (set-overflow op2 left) (alter-memory op2 1024))
            (rule "bail" :owner main :when error op2 42
                :if (or false (cmp (wait op2) >= 100))
                :do (error "gave up"))
            (output main)
            "#,
        );
    }

    #[test]
    fn print_parse_fixpoint_predicates_and_misc_nodes() {
        assert_fixpoint(
            r#"
            (fragment f0 (project [a, b]
                (select (and (lit a >= 10) (or (cols a <> b) (not (lit b = "x"))))
                    (union (wrapper X) (wrapper Y)
                        (depjoin books isbn = isbn (select true (scan inv)))))))
            (output f0)
            "#,
        );
    }

    #[test]
    fn renders_collector_children() {
        let mut b = PlanBuilder::new();
        let (c, _) = b.collector(&[("m1", true), ("m2", false)], None);
        let f = b.fragment(c, "out");
        let plan = b.build(f);
        let text = render_plan(&plan);
        assert!(text.contains("child(m1) [active]"));
        assert!(text.contains("child(m2) [standby]"));
    }
}
