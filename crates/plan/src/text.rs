//! Human-readable plan rendering.
//!
//! The paper's engine "accepts plans which are specified in an XML-based
//! query plan language which is human-writable" (§5). We provide the
//! rendering half here — a stable, indented textual form used by plan
//! debugging, golden tests, and EXPERIMENTS.md listings. (Plans are also
//! serde-serializable for machine round-trips.)

use std::fmt::Write as _;

use crate::ops::{OperatorNode, OperatorSpec};
use crate::plan::{Fragment, QueryPlan};
use crate::rules::{Action, Rule};

/// Render a whole plan.
pub fn render_plan(plan: &QueryPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "plan(output={}, complete={})",
        plan.output, plan.complete
    );
    for (before, after) in &plan.dependencies {
        let _ = writeln!(out, "  after({before} -> {after})");
    }
    for rule in &plan.global_rules {
        let _ = writeln!(out, "  {}", render_rule(rule));
    }
    for f in &plan.fragments {
        out.push_str(&render_fragment(f));
    }
    out
}

/// Render one fragment.
pub fn render_fragment(f: &Fragment) -> String {
    let mut out = String::new();
    let active = if f.initially_active {
        ""
    } else {
        " [contingent]"
    };
    let _ = writeln!(
        out,
        "  fragment {} -> `{}`{}",
        f.id, f.materialize_as, active
    );
    for rule in &f.local_rules {
        let _ = writeln!(out, "    {}", render_rule(rule));
    }
    render_node(&f.root, 2, &mut out);
    out
}

fn render_node(node: &OperatorNode, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let mut annotations = Vec::new();
    if let Some(m) = node.memory_budget {
        annotations.push(format!("mem={m}"));
    }
    if let Some(c) = node.est_cardinality {
        annotations.push(format!("est={c:.0}"));
    }
    let ann = if annotations.is_empty() {
        String::new()
    } else {
        format!(" [{}]", annotations.join(", "))
    };
    let _ = writeln!(out, "{indent}{} {}{}", node.id, node.label(), ann);
    if let OperatorSpec::Collector { children, .. } = &node.spec {
        for c in children {
            let act = if c.initially_active {
                "active"
            } else {
                "standby"
            };
            let _ = writeln!(out, "{indent}  {} child({}) [{act}]", c.id, c.source);
        }
    }
    for c in node.children() {
        render_node(c, depth + 1, out);
    }
}

/// Render one rule in the paper's `when … if … then …` form.
pub fn render_rule(rule: &Rule) -> String {
    let actions: Vec<String> = rule.actions.iter().map(render_action).collect();
    format!(
        "rule `{}` (owner {}): when {:?}({}{}) if {:?} then [{}]",
        rule.name,
        rule.owner,
        rule.event.kind,
        rule.event.subject,
        rule.event
            .value
            .map(|v| format!(", {v}"))
            .unwrap_or_default(),
        rule.condition,
        actions.join("; ")
    )
}

fn render_action(a: &Action) -> String {
    match a {
        Action::SetOverflowMethod { op, method } => format!("set_overflow({op}, {method:?})"),
        Action::AlterMemory { op, bytes } => format!("alter_memory({op}, {bytes})"),
        Action::Activate(s) => format!("activate({s})"),
        Action::Deactivate(s) => format!("deactivate({s})"),
        Action::Reschedule => "reschedule".to_string(),
        Action::Replan => "replan".to_string(),
        Action::ReturnError(m) => format!("error({m})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::ids::OpId;
    use crate::ops::JoinKind;
    use crate::rules::Rule;

    #[test]
    fn renders_tree_with_annotations() {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan("A").with_est_cardinality(100.0);
        let s2 = b.wrapper_scan("B");
        let j = b
            .join(JoinKind::DoublePipelined, s1, s2, "k", "k")
            .with_memory(4096);
        let f = b.fragment(j, "out");
        let plan = b.build(f);
        let text = render_plan(&plan);
        assert!(text.contains("wrapper(A)"));
        assert!(text.contains("est=100"));
        assert!(text.contains("mem=4096"));
        assert!(text.contains("fragment frag0 -> `out`"));
    }

    #[test]
    fn renders_rules_in_when_if_then_form() {
        let rule = Rule::replan_on_misestimate(crate::ids::FragmentId(1), OpId(7), 2.0);
        let s = render_rule(&rule);
        assert!(s.contains("when Closed"));
        assert!(s.contains("then [replan]"));
    }

    #[test]
    fn renders_collector_children() {
        let mut b = PlanBuilder::new();
        let (c, _) = b.collector(&[("m1", true), ("m2", false)], None);
        let f = b.fragment(c, "out");
        let plan = b.build(f);
        let text = render_plan(&plan);
        assert!(text.contains("child(m1) [active]"));
        assert!(text.contains("child(m2) [standby]"));
    }
}
