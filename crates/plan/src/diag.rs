//! Lint-style plan diagnostics.
//!
//! The static analyzer (the `validate` passes in this crate plus the
//! schema/exchange/memory passes in `tukwila-analyze`) reports through this
//! module instead of bailing on the first problem: every finding becomes a
//! [`Diagnostic`] with a stable `TA`-prefixed code, a severity, and a
//! *span* — the plan element (fragment, operator, or rule) the finding is
//! anchored to, rendered against the same labels [`crate::text`] prints so
//! a diagnostic can be matched to a plan listing by eye.
//!
//! The full code table lives in [`codes`] and is documented in DESIGN.md §9;
//! `tests/source_lint.rs` cross-checks that the two never drift.

use std::fmt;

use crate::ids::{FragmentId, OpId};
use crate::plan::QueryPlan;
use crate::rules::SubjectRef;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; no action needed.
    Info,
    /// Suspicious construct the engine tolerates (often by degrading, e.g.
    /// an exchange over a non-partitionable join runs as a passthrough).
    Warn,
    /// The plan is malformed and must not execute.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered output and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which analyzer pass a code belongs to (also decides the
/// [`tukwila_common::TukwilaError`] kind when an Error-severity finding is
/// converted into a hard failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Plan structure: ids, dependencies, fragment graph.
    Structure,
    /// ECA rule set: ownership, subjects, conflicts, reachability.
    Rules,
    /// Bottom-up schema/type inference.
    Schema,
    /// Exchange / parallelism discipline.
    Exchange,
    /// Memory-reservation discipline.
    Memory,
}

impl Pass {
    /// Name used in rendered output and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Pass::Structure => "structure",
            Pass::Rules => "rules",
            Pass::Schema => "schema",
            Pass::Exchange => "exchange",
            Pass::Memory => "memory",
        }
    }
}

/// Registry entry for one diagnostic code.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// Stable code, e.g. `"TA020"`.
    pub code: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// Owning pass.
    pub pass: Pass,
    /// One-line summary (shown by `plan-lint --codes`).
    pub summary: &'static str,
}

/// The full diagnostic code table. Stable: codes are never renumbered, only
/// retired. DESIGN.md §9 documents each entry; `tests/source_lint.rs`
/// fails the build if an entry here has no matching row there.
pub mod codes {
    use super::{CodeInfo, Pass, Severity};

    macro_rules! ta_codes {
        ($($name:ident = ($code:literal, $sev:ident, $pass:ident, $summary:literal);)*) => {
            $(
                /// See [`self`] module docs; summary:
                #[doc = $summary]
                pub const $name: CodeInfo = CodeInfo {
                    code: $code,
                    severity: Severity::$sev,
                    pass: Pass::$pass,
                    summary: $summary,
                };
            )*
            /// Every registered code, in numeric order.
            pub const ALL: &[CodeInfo] = &[$($name),*];
        };
    }

    ta_codes! {
        // -- structure ----------------------------------------------------
        DUPLICATE_FRAGMENT_ID = ("TA001", Error, Structure,
            "duplicate fragment id");
        DUPLICATE_OP_ID = ("TA002", Error, Structure,
            "duplicate operator id");
        MISSING_OUTPUT = ("TA003", Error, Structure,
            "output fragment does not exist");
        UNKNOWN_DEPENDENCY = ("TA004", Error, Structure,
            "dependency references an unknown fragment");
        SELF_DEPENDENCY = ("TA005", Error, Structure,
            "fragment depends on itself");
        DEPENDENCY_CYCLE = ("TA006", Error, Structure,
            "fragment dependency graph has a cycle");
        ORPHAN_FRAGMENT = ("TA007", Warn, Structure,
            "fragment result is never consumed");
        ORPHAN_CONTINGENT = ("TA008", Warn, Structure,
            "contingent fragment is never activated by any rule");
        // -- rules --------------------------------------------------------
        UNKNOWN_RULE_OWNER = ("TA010", Error, Rules,
            "rule owner is not a plan element");
        UNKNOWN_RULE_SUBJECT = ("TA011", Error, Rules,
            "rule listens on an unknown subject");
        UNKNOWN_ACTION_TARGET = ("TA012", Error, Rules,
            "rule action targets an unknown subject");
        CONFLICTING_RULES = ("TA013", Error, Rules,
            "two rules can fire on the same event and negate each other");
        DUPLICATE_RULE_NAME = ("TA014", Warn, Rules,
            "two rules share a name");
        UNREACHABLE_RULE = ("TA015", Warn, Rules,
            "rule condition is always false");
        SHADOWED_RULE = ("TA016", Warn, Rules,
            "rule duplicates an earlier rule's trigger, condition and actions");
        DEAD_TIMEOUT_RULE = ("TA017", Warn, Rules,
            "timeout rule on a subject that never emits timeout events");
        // -- schema -------------------------------------------------------
        UNKNOWN_COLUMN = ("TA020", Error, Schema,
            "column reference does not resolve in the input schema");
        AMBIGUOUS_COLUMN = ("TA021", Error, Schema,
            "column reference matches more than one input column");
        JOIN_KEY_TYPE_MISMATCH = ("TA022", Error, Schema,
            "join key columns have incomparable types");
        PREDICATE_TYPE_MISMATCH = ("TA023", Error, Schema,
            "predicate compares incomparable types");
        UNION_ARITY_MISMATCH = ("TA024", Error, Schema,
            "union inputs have different arities");
        UNION_TYPE_MISMATCH = ("TA025", Warn, Schema,
            "union inputs disagree on a column type");
        DUPLICATE_OUTPUT_COLUMN = ("TA026", Warn, Schema,
            "operator output schema repeats a qualified column name");
        // -- exchange -----------------------------------------------------
        EXCHANGE_NOT_PARTITIONABLE = ("TA030", Warn, Exchange,
            "exchange input is not hash-partitionable (runs as a passthrough)");
        EXCHANGE_OVER_PARALLELISM = ("TA031", Warn, Exchange,
            "exchange partition count exceeds the configured max parallelism");
        NESTED_EXCHANGE = ("TA032", Error, Exchange,
            "exchange directly wraps another exchange");
        NULLABLE_EXCHANGE_KEY = ("TA033", Warn, Exchange,
            "partitioned join key may be NULL; NULL keys are dropped");
        EXCHANGE_PASSTHROUGH = ("TA034", Info, Exchange,
            "exchange with a single partition is a passthrough");
        // -- memory -------------------------------------------------------
        UNBUDGETED_STATEFUL_OP = ("TA040", Warn, Memory,
            "stateful operator has no memory budget; the governor cannot reach it");
        PARTITION_BUDGET_UNDERFLOW = ("TA041", Warn, Memory,
            "per-partition share of the memory budget rounds to zero bytes");
        OVERFLOW_WITHOUT_SPILL_CONTEXT = ("TA042", Warn, Memory,
            "overflow method set on a join kind that cannot spill incrementally");
        UNHANDLED_OVERFLOW = ("TA043", Warn, Memory,
            "budgeted join has no overflow strategy and no out_of_memory rule");
    }

    /// Look up a code by its string form.
    pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
        ALL.iter().find(|c| c.code == code)
    }
}

/// The plan element a diagnostic is anchored to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Span {
    /// The plan as a whole.
    Plan,
    /// One fragment.
    Fragment(FragmentId),
    /// One operator node (with its owning fragment when known).
    Op {
        /// Fragment containing the operator, if resolvable.
        fragment: Option<FragmentId>,
        /// The operator.
        op: OpId,
    },
    /// One rule, identified by name (rule names are diagnostics anchors
    /// even when duplicated — TA014 flags the duplication itself).
    Rule {
        /// The rule's name.
        name: String,
        /// The rule's owner.
        owner: SubjectRef,
    },
}

impl Span {
    /// Anchor to an operator, resolving its fragment from the plan.
    pub fn op_in(plan: &QueryPlan, op: OpId) -> Span {
        let fragment = plan
            .fragments
            .iter()
            .find(|f| f.op_ids().contains(&op))
            .map(|f| f.id);
        Span::Op { fragment, op }
    }

    /// Render the span against the plan, using the same operator labels as
    /// [`crate::text::render_plan`] so the arrow line matches a listing.
    pub fn render(&self, plan: &QueryPlan) -> String {
        match self {
            Span::Plan => format!("plan(output={})", plan.output),
            Span::Fragment(id) => match plan.fragment(*id) {
                Some(f) => format!("fragment {} -> `{}`", f.id, f.materialize_as),
                None => format!("fragment {id} (not in plan)"),
            },
            Span::Op { fragment, op } => {
                let label = plan
                    .fragments
                    .iter()
                    .find_map(|f| f.root.find(*op))
                    .map(|n| n.label());
                match (fragment, label) {
                    (Some(f), Some(l)) => format!("{f} / {op} {l}"),
                    (Some(f), None) => format!("{f} / {op}"),
                    (None, Some(l)) => format!("{op} {l}"),
                    (None, None) => format!("{op} (not in plan)"),
                }
            }
            Span::Rule { name, owner } => format!("rule `{name}` (owner {owner})"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Severity (defaults to the code's registered severity).
    pub severity: Severity,
    /// Owning pass.
    pub pass: Pass,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// Anchor.
    pub span: Span,
    /// Secondary context lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Build a diagnostic from a registry entry.
    pub fn new(info: CodeInfo, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code: info.code,
            severity: info.severity,
            pass: info.pass,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attach a context note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Render one diagnostic in the `severity[code]: message` form.
    pub fn render(&self, plan: &QueryPlan) -> String {
        let mut out = format!(
            "{}[{}]: {}\n  --> {}",
            self.severity,
            self.code,
            self.message,
            self.span.render(plan)
        );
        for n in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(n);
        }
        out
    }
}

/// A full analysis report: the accumulated findings of every pass that ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append findings from one pass.
    pub fn extend(&mut self, diags: Vec<Diagnostic>) {
        self.diagnostics.extend(diags);
    }

    /// Number of Error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of Warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    /// Findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Whether the plan may execute (no Error-severity findings).
    pub fn is_executable(&self) -> bool {
        self.error_count() == 0
    }

    /// Whether a specific code fired.
    pub fn has(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The first Error-severity finding, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// Render the whole report against a plan (one blank line between
    /// findings, then a summary line).
    pub fn render(&self, plan: &QueryPlan) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(plan));
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s), {} note(s)\n",
            self.error_count(),
            self.warn_count(),
            self.count(Severity::Info)
        ));
        out
    }

    /// Machine-readable JSON form (hand-rolled; the in-tree serde shim does
    /// not provide a JSON serializer). Shape:
    /// `{"errors":N,"warnings":N,"infos":N,"diagnostics":[{...}]}` with each
    /// diagnostic carrying `code`, `severity`, `pass`, `message`,
    /// `fragment`/`op`/`rule` span fields (null when absent), and `notes`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            self.error_count(),
            self.warn_count(),
            self.count(Severity::Info)
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"code\":{},", json_str(d.code)));
            out.push_str(&format!("\"severity\":{},", json_str(d.severity.label())));
            out.push_str(&format!("\"pass\":{},", json_str(d.pass.label())));
            out.push_str(&format!("\"message\":{},", json_str(&d.message)));
            let (frag, op, rule) = match &d.span {
                Span::Plan => (None, None, None),
                Span::Fragment(f) => (Some(f.to_string()), None, None),
                Span::Op { fragment, op } => {
                    (fragment.map(|f| f.to_string()), Some(op.to_string()), None)
                }
                Span::Rule { name, .. } => (None, None, Some(name.clone())),
            };
            out.push_str(&format!("\"fragment\":{},", json_opt(frag.as_deref())));
            out.push_str(&format!("\"op\":{},", json_opt(op.as_deref())));
            out.push_str(&format!("\"rule\":{},", json_opt(rule.as_deref())));
            out.push_str("\"notes\":[");
            for (j, n) in d.notes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(n));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt(s: Option<&str>) -> String {
    match s {
        Some(s) => json_str(s),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use crate::ops::JoinKind;

    fn plan() -> QueryPlan {
        let mut b = PlanBuilder::new();
        let s1 = b.wrapper_scan("A");
        let s2 = b.wrapper_scan("B");
        let j = b.join(JoinKind::HybridHash, s1, s2, "k", "k");
        let f = b.fragment(j, "out");
        b.build(f)
    }

    #[test]
    fn codes_are_unique_and_sorted() {
        let mut seen = std::collections::BTreeSet::new();
        let mut prev = "";
        for c in codes::ALL {
            assert!(seen.insert(c.code), "duplicate code {}", c.code);
            assert!(c.code > prev, "codes out of order at {}", c.code);
            prev = c.code;
            assert!(c.code.starts_with("TA") && c.code.len() == 5);
        }
        assert!(codes::ALL.len() >= 10);
        assert_eq!(codes::lookup("TA020").unwrap().code, "TA020");
        assert!(codes::lookup("TA999").is_none());
    }

    #[test]
    fn span_renders_against_plan_labels() {
        let p = plan();
        let span = Span::op_in(&p, OpId(2));
        let s = span.render(&p);
        assert!(s.contains("frag0"), "{s}");
        assert!(s.contains("join[HybridHash]"), "{s}");
    }

    #[test]
    fn report_counts_and_gating() {
        let p = plan();
        let mut r = Report::new();
        assert!(r.is_executable());
        r.extend(vec![
            Diagnostic::new(codes::UNKNOWN_COLUMN, Span::op_in(&p, OpId(2)), "no `x`"),
            Diagnostic::new(codes::UNBUDGETED_STATEFUL_OP, Span::op_in(&p, OpId(2)), "m"),
        ]);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert!(!r.is_executable());
        assert!(r.has("TA020"));
        assert_eq!(r.first_error().unwrap().code, "TA020");
        let text = r.render(&p);
        assert!(text.contains("error[TA020]"), "{text}");
        assert!(text.contains("1 error(s), 1 warning(s)"), "{text}");
    }

    #[test]
    fn json_escapes_and_validates_shape() {
        let mut r = Report::new();
        r.extend(vec![Diagnostic::new(
            codes::UNKNOWN_COLUMN,
            Span::Rule {
                name: "has \"quotes\"\n".into(),
                owner: SubjectRef::Op(OpId(0)),
            },
            "msg with \\ backslash",
        )
        .with_note("a note")]);
        let j = r.to_json();
        assert!(j.contains(r#""code":"TA020""#), "{j}");
        assert!(j.contains(r#""rule":"has \"quotes\"\n""#), "{j}");
        assert!(j.contains(r#""message":"msg with \\ backslash""#), "{j}");
        assert!(j.contains(r#""notes":["a note"]"#), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }
}
