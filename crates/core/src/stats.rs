//! Query-level results and execution statistics.

use std::sync::Arc;
use std::time::Duration;

use tukwila_common::Relation;
use tukwila_exec::FragmentReport;

/// Statistics accumulated over one query's interleaved execution.
#[derive(Debug, Clone, Default)]
pub struct ExecutionStats {
    /// Times the optimizer was re-invoked mid-query (§3.1.2 `replan`).
    pub replans: usize,
    /// Times execution was rescheduled around a blocked source (§3.1.2
    /// `reschedule`, query scrambling).
    pub reschedules: usize,
    /// Fragment runs (including retries).
    pub fragments_run: usize,
    /// Per-fragment reports in execution order.
    pub fragment_reports: Vec<FragmentReport>,
    /// Tuples written to spill storage (overflow resolution).
    pub spill_tuples_written: usize,
    /// Tuples read back from spill storage.
    pub spill_tuples_read: usize,
    /// Peak engine memory across the run, bytes.
    pub peak_memory: usize,
    /// Total wall-clock duration.
    pub duration: Duration,
    /// Time until the first tuple of the *final* fragment appeared.
    pub time_to_first: Option<Duration>,
}

impl ExecutionStats {
    /// Total spill I/O in tuples (the unit of §4.2.3's analysis).
    pub fn spill_tuple_io(&self) -> usize {
        self.spill_tuples_written + self.spill_tuples_read
    }
}

/// The answer to a query plus how it was computed.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result relation.
    pub relation: Arc<Relation>,
    /// Execution statistics.
    pub stats: ExecutionStats,
    /// `(tuples, elapsed)` samples of the output fragment — the series
    /// behind the paper's tuples-vs-time figures.
    pub series: Vec<(u64, Duration)>,
}

impl QueryResult {
    /// Result cardinality.
    pub fn cardinality(&self) -> usize {
        self.relation.len()
    }
}
