//! Query-level results and execution statistics.

use std::sync::Arc;
use std::time::Duration;

use tukwila_common::Relation;
use tukwila_exec::{ExchangeSpill, FragmentReport};
use tukwila_trace::TraceSnapshot;

/// Statistics accumulated over one query's interleaved execution.
#[derive(Debug, Clone, Default)]
pub struct ExecutionStats {
    /// Times the optimizer was re-invoked mid-query (§3.1.2 `replan`).
    pub replans: usize,
    /// Times execution was rescheduled around a blocked source (§3.1.2
    /// `reschedule`, query scrambling).
    pub reschedules: usize,
    /// Fragment runs (including retries).
    pub fragments_run: usize,
    /// Fragment runs dispatched while at least one sibling was already in
    /// flight — the DAG scheduler's intra-query overlap counter (always 0
    /// under a thread budget of one).
    pub fragments_overlapped: usize,
    /// Largest exchange partition degree any join ran with (0 = fully
    /// sequential pipelines).
    pub partitions: usize,
    /// Per-exchange spill totals, labeled by join operator id with one
    /// per-partition vector each — two 4-way joins stay distinguishable
    /// from one 8-way join.
    pub partition_spills: Vec<ExchangeSpill>,
    /// Source-cache lookups served from a completed entry (this query's
    /// own attribution, not the fleet-wide cache counters).
    pub cache_hits: u64,
    /// Source-cache lookups this query led and then populated.
    pub cache_misses: u64,
    /// Source-cache lookups coalesced onto another flight's fetch.
    pub cache_coalesced: u64,
    /// Source-cache lookups the cache declined to serve or lead.
    pub cache_bypass: u64,
    /// Per-fragment reports in completion order.
    pub fragment_reports: Vec<FragmentReport>,
    /// Tuples written to spill storage (overflow resolution).
    pub spill_tuples_written: usize,
    /// Tuples read back from spill storage.
    pub spill_tuples_read: usize,
    /// Bytes written to spill storage (this query's own I/O, by snapshot
    /// delta when the store is shared across a fleet).
    pub spill_bytes_written: usize,
    /// Bytes read back from spill storage.
    pub spill_bytes_read: usize,
    /// Memory high-water mark of this query's pool across the run, bytes.
    pub peak_memory: usize,
    /// Total wall-clock duration.
    pub duration: Duration,
    /// Time until the first tuple of the *final* fragment appeared.
    pub time_to_first: Option<Duration>,
    /// The submission deadline tripped and cancelled the query mid-run
    /// (distinct from rule-driven aborts, which leave this false).
    pub deadline_exceeded: bool,
    /// The client (or service shutdown) cancelled the query mid-run.
    pub cancelled: bool,
    /// Time spent waiting in the service's admission queue before a worker
    /// picked the query up (zero outside the service).
    pub queue_wait: Duration,
    /// Warn-severity static-analysis findings over every plan this query
    /// actually ran (the initial lowering plus each replan). Error
    /// findings never reach execution — lowering fails instead.
    pub plan_diag_warnings: usize,
    /// Info-severity static-analysis findings over every plan run.
    pub plan_diag_infos: usize,
}

impl ExecutionStats {
    /// Total spill I/O in tuples (the unit of §4.2.3's analysis).
    pub fn spill_tuple_io(&self) -> usize {
        self.spill_tuples_written + self.spill_tuples_read
    }

    /// Total spill I/O in bytes.
    pub fn spill_byte_io(&self) -> usize {
        self.spill_bytes_written + self.spill_bytes_read
    }
}

/// The answer to a query plus how it was computed.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result relation.
    pub relation: Arc<Relation>,
    /// Execution statistics.
    pub stats: ExecutionStats,
    /// `(tuples, elapsed)` samples of the output fragment — the series
    /// behind the paper's tuples-vs-time figures.
    pub series: Vec<(u64, Duration)>,
    /// Structured execution trace (`None` when tracing is `Off`): the
    /// timestamped event timeline plus per-operator metrics, ready for
    /// the JSON/CSV/timeline renderers in `tukwila_trace`.
    pub trace: Option<TraceSnapshot>,
}

impl QueryResult {
    /// Result cardinality.
    pub fn cardinality(&self) -> usize {
        self.relation.len()
    }
}
