//! The DAG fragment scheduler.
//!
//! The paper executes "each plan fragment in turn, as a single, pipelined
//! execution unit"; this module generalizes that loop into a dependency-DAG
//! scheduler. Fragments whose predecessors have completed are *runnable*;
//! with an intra-query thread budget above one, runnable fragments execute
//! concurrently on scoped worker threads, so a fragment blocked on a slow
//! source simply overlaps with runnable siblings instead of serializing
//! behind them.
//!
//! Query scrambling (§3.1.2) changes meaning under the DAG: `Rescheduled`
//! is no longer "abandon and retry after everything else" but
//! "deprioritize" — a rescheduled fragment is retried only when no
//! fresh fragment can be dispatched and nothing else is in flight, while
//! its siblings keep making progress in the meantime. ECA rule events stay
//! serialized through the [`PlanRuntime`] event bus (any worker thread may
//! emit; processing holds one lock), and reschedule signals are
//! fragment-scoped so a stalled fragment's timeout rule cannot abort a
//! healthy sibling.
//!
//! With a budget of one thread the scheduler reproduces the sequential
//! engine exactly — same dispatch order, same retry/deferral behaviour.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

use tukwila_common::{Relation, Result, TukwilaError};
use tukwila_exec::{run_fragment_observed, ExecEnv, FragmentOutcome, PlanRuntime};
use tukwila_plan::{FragmentId, QueryPlan, SubjectRef};
use tukwila_trace::TraceEvent;

use crate::stats::ExecutionStats;

/// How a full pass over a plan's fragments ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedOutcome {
    /// All planned work completed (the output fragment materialized).
    Finished,
    /// A rule requested re-optimization; the completed fragments'
    /// materializations are ready for reuse.
    Replan,
}

/// Execute a plan's fragment DAG under `rt`, running up to `threads`
/// fragments concurrently. Accumulates fragment reports, reschedule
/// counters, and overlap counters into `stats`; `series` receives the
/// output fragment's `(tuples, elapsed)` samples.
pub fn run_fragments(
    plan: &QueryPlan,
    rt: &Arc<PlanRuntime>,
    threads: usize,
    max_retries: usize,
    stats: &mut ExecutionStats,
    series: &mut Vec<(u64, Duration)>,
) -> Result<SchedOutcome> {
    let outcome = if threads.max(1) == 1 || plan.fragments.len() == 1 {
        run_sequential(plan, rt, max_retries, stats, series)
    } else {
        run_parallel(plan, rt, threads, max_retries, stats, series)
    };
    // Fold this run's exchange counters into the query stats, merging
    // entries for the same join operator (a replan re-running the same
    // join accumulates; distinct joins stay separate).
    let ps = rt.parallel_stats();
    stats.partitions = stats.partitions.max(ps.max_partitions);
    for e in &ps.partition_spills {
        match stats.partition_spills.iter_mut().find(|s| s.op == e.op) {
            Some(s) => {
                if s.tuples.len() < e.tuples.len() {
                    s.tuples.resize(e.tuples.len(), 0);
                }
                for (acc, n) in s.tuples.iter_mut().zip(&e.tuples) {
                    *acc += n;
                }
            }
            None => stats.partition_spills.push(e.clone()),
        }
    }
    // And the per-query source-cache attribution.
    let cc = rt.cache_counts();
    stats.cache_hits += cc.hits;
    stats.cache_misses += cc.misses;
    stats.cache_coalesced += cc.coalesced;
    stats.cache_bypass += cc.bypass;
    outcome
}

/// The paper's sequential loop: one fragment at a time, rescheduled
/// fragments preferentially retried after other runnable work.
fn run_sequential(
    plan: &QueryPlan,
    rt: &Arc<PlanRuntime>,
    max_retries: usize,
    stats: &mut ExecutionStats,
    series: &mut Vec<(u64, Duration)>,
) -> Result<SchedOutcome> {
    let mut completed: BTreeSet<FragmentId> = BTreeSet::new();
    let mut retries: HashMap<FragmentId, usize> = HashMap::new();
    let mut deferred: BTreeSet<FragmentId> = BTreeSet::new();

    loop {
        let active = |id: FragmentId| rt.is_active(SubjectRef::Fragment(id));
        let ready = plan.ready_fragments(&completed, &active);
        if ready.is_empty() {
            // Done if the output fragment completed; otherwise the plan
            // is stuck (contingent fragments never activated).
            if completed.contains(&plan.output) {
                break;
            }
            if plan
                .fragments
                .iter()
                .all(|f| completed.contains(&f.id) || !active(f.id))
            {
                return Err(TukwilaError::Plan(
                    "no runnable fragments but output incomplete".into(),
                ));
            }
            return Err(TukwilaError::Internal(
                "scheduler stalled with ready set empty".into(),
            ));
        }
        // Prefer fragments that were not just rescheduled (query
        // scrambling runs other work first).
        let frag = *ready
            .iter()
            .find(|f| !deferred.contains(f))
            .unwrap_or(&ready[0]);
        let is_output = frag == plan.output;

        if rt.trace().events_enabled() {
            rt.trace().emit(TraceEvent::FragmentDispatched {
                fragment: frag.0,
                overlapped: false,
            });
        }
        let mut observer = |n: u64, d: Duration| {
            if is_output {
                series.push((n, d));
            }
        };
        let report = run_fragment_observed(plan, frag, rt, &mut observer)?;
        stats.fragments_run += 1;
        let outcome = report.outcome.clone();
        let produced = report.produced;
        stats.fragment_reports.push(report);

        match outcome {
            FragmentOutcome::Completed {
                replan_requested, ..
            } => {
                if rt.trace().events_enabled() {
                    rt.trace().emit(TraceEvent::FragmentCompleted {
                        fragment: frag.0,
                        tuples: produced,
                    });
                }
                completed.insert(frag);
                deferred.clear(); // conditions changed; retry blocked work
                let work_remains = plan
                    .fragments
                    .iter()
                    .any(|f| !completed.contains(&f.id) && active(f.id));
                if replan_requested && (work_remains || !plan.complete) {
                    return Ok(SchedOutcome::Replan);
                }
                if completed.contains(&plan.output) && !work_remains {
                    break;
                }
            }
            FragmentOutcome::Rescheduled => {
                if rt.trace().events_enabled() {
                    rt.trace()
                        .emit(TraceEvent::FragmentRescheduled { fragment: frag.0 });
                }
                stats.reschedules += 1;
                let r = retries.entry(frag).or_insert(0);
                *r += 1;
                if *r > max_retries {
                    return Err(TukwilaError::Plan(format!(
                        "fragment {frag} exceeded its retry budget"
                    )));
                }
                if let Some(f) = plan.fragment(frag) {
                    rt.reset_fragment(f);
                }
                deferred.insert(frag);
                // If nothing else is runnable, fall through and retry it
                // immediately on the next iteration (deferral is only a
                // preference).
            }
            FragmentOutcome::Aborted(m) => return Err(TukwilaError::Cancelled(m)),
            FragmentOutcome::Failed(e) => {
                if !e.is_recoverable() {
                    return Err(e);
                }
                let r = retries.entry(frag).or_insert(0);
                *r += 1;
                if *r > max_retries {
                    return Err(e);
                }
                if let Some(f) = plan.fragment(frag) {
                    rt.reset_fragment(f);
                }
                deferred.insert(frag);
            }
        }
    }
    Ok(SchedOutcome::Finished)
}

/// The concurrent DAG scheduler: a dispatcher thread hands runnable
/// fragments to scoped workers, bounded by the thread budget, and
/// processes completions as they arrive.
fn run_parallel(
    plan: &QueryPlan,
    rt: &Arc<PlanRuntime>,
    threads: usize,
    max_retries: usize,
    stats: &mut ExecutionStats,
    series: &mut Vec<(u64, Duration)>,
) -> Result<SchedOutcome> {
    type WorkerResult = (
        FragmentId,
        Result<tukwila_exec::FragmentReport>,
        Vec<(u64, Duration)>,
    );

    let mut completed: BTreeSet<FragmentId> = BTreeSet::new();
    let mut retries: HashMap<FragmentId, usize> = HashMap::new();
    let mut deferred: BTreeSet<FragmentId> = BTreeSet::new();
    let mut in_flight: BTreeSet<FragmentId> = BTreeSet::new();
    // A terminal condition observed while siblings are still running: stop
    // dispatching, let the in-flight fragments drain, then surface it.
    let mut pending_error: Option<TukwilaError> = None;
    let mut replan_pending = false;

    let (tx, rx) = std::sync::mpsc::channel::<WorkerResult>();

    std::thread::scope(|scope| -> Result<SchedOutcome> {
        loop {
            let active = |id: FragmentId| rt.is_active(SubjectRef::Fragment(id));
            if pending_error.is_none() && !replan_pending {
                while in_flight.len() < threads {
                    let ready = plan.ready_fragments(&completed, &active);
                    let candidates: Vec<FragmentId> = ready
                        .into_iter()
                        .filter(|f| !in_flight.contains(f))
                        .collect();
                    // Deprioritization: a rescheduled fragment is retried
                    // only when nothing fresh is dispatchable and nothing
                    // is in flight — its siblings get the budget first.
                    let next = candidates
                        .iter()
                        .find(|f| !deferred.contains(f))
                        .copied()
                        .or_else(|| {
                            if in_flight.is_empty() {
                                candidates.first().copied()
                            } else {
                                None
                            }
                        });
                    let Some(frag) = next else { break };
                    let overlapped = !in_flight.is_empty();
                    if overlapped {
                        stats.fragments_overlapped += 1;
                    }
                    if rt.trace().events_enabled() {
                        rt.trace().emit(TraceEvent::FragmentDispatched {
                            fragment: frag.0,
                            overlapped,
                        });
                    }
                    in_flight.insert(frag);
                    let tx = tx.clone();
                    let rt = rt.clone();
                    let is_output = frag == plan.output;
                    scope.spawn(move || {
                        // A panicking fragment must still report back:
                        // the dispatcher holds its own Sender, so a
                        // vanished worker would otherwise leave recv()
                        // blocked forever with the slot marked in-flight.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                let mut local: Vec<(u64, Duration)> = Vec::new();
                                let report = run_fragment_observed(plan, frag, &rt, &mut |n, d| {
                                    if is_output {
                                        local.push((n, d));
                                    }
                                });
                                (report, local)
                            }));
                        let (report, local) = outcome.unwrap_or_else(|payload| {
                            let msg = payload
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "unknown panic".to_string());
                            (
                                Err(TukwilaError::Internal(format!(
                                    "fragment {frag} worker panicked: {msg}"
                                ))),
                                Vec::new(),
                            )
                        });
                        let _ = tx.send((frag, report, local));
                    });
                }
            }

            if in_flight.is_empty() {
                if let Some(e) = pending_error.take() {
                    return Err(e);
                }
                if replan_pending {
                    return Ok(SchedOutcome::Replan);
                }
                let work_remains = plan
                    .fragments
                    .iter()
                    .any(|f| !completed.contains(&f.id) && active(f.id));
                if completed.contains(&plan.output) && !work_remains {
                    return Ok(SchedOutcome::Finished);
                }
                let ready = plan.ready_fragments(&completed, &active);
                if ready.is_empty() {
                    if completed.contains(&plan.output) {
                        return Ok(SchedOutcome::Finished);
                    }
                    if plan
                        .fragments
                        .iter()
                        .all(|f| completed.contains(&f.id) || !active(f.id))
                    {
                        return Err(TukwilaError::Plan(
                            "no runnable fragments but output incomplete".into(),
                        ));
                    }
                }
                return Err(TukwilaError::Internal(
                    "scheduler stalled with ready set empty".into(),
                ));
            }

            let (frag, report, local_series) = rx
                .recv()
                .map_err(|_| TukwilaError::Internal("scheduler worker channel closed".into()))?;
            in_flight.remove(&frag);
            let report = match report {
                Ok(r) => r,
                Err(e) => {
                    pending_error.get_or_insert(e);
                    continue;
                }
            };
            if frag == plan.output {
                *series = local_series;
            }
            stats.fragments_run += 1;
            let outcome = report.outcome.clone();
            let produced = report.produced;
            stats.fragment_reports.push(report);

            match outcome {
                FragmentOutcome::Completed {
                    replan_requested, ..
                } => {
                    if rt.trace().events_enabled() {
                        rt.trace().emit(TraceEvent::FragmentCompleted {
                            fragment: frag.0,
                            tuples: produced,
                        });
                    }
                    completed.insert(frag);
                    deferred.clear();
                    let work_remains = plan
                        .fragments
                        .iter()
                        .any(|f| !completed.contains(&f.id) && active(f.id));
                    if replan_requested && (work_remains || !plan.complete) {
                        replan_pending = true;
                    }
                }
                FragmentOutcome::Rescheduled => {
                    if rt.trace().events_enabled() {
                        rt.trace()
                            .emit(TraceEvent::FragmentRescheduled { fragment: frag.0 });
                    }
                    stats.reschedules += 1;
                    let r = retries.entry(frag).or_insert(0);
                    *r += 1;
                    if *r > max_retries {
                        pending_error.get_or_insert_with(|| {
                            TukwilaError::Plan(format!("fragment {frag} exceeded its retry budget"))
                        });
                    } else {
                        if let Some(f) = plan.fragment(frag) {
                            rt.reset_fragment(f);
                        }
                        deferred.insert(frag);
                    }
                }
                FragmentOutcome::Aborted(m) => {
                    pending_error.get_or_insert(TukwilaError::Cancelled(m));
                }
                FragmentOutcome::Failed(e) => {
                    let retryable = e.is_recoverable();
                    if retryable {
                        let r = retries.entry(frag).or_insert(0);
                        *r += 1;
                        if *r > max_retries {
                            pending_error.get_or_insert(e);
                        } else {
                            if let Some(f) = plan.fragment(frag) {
                                rt.reset_fragment(f);
                            }
                            deferred.insert(frag);
                        }
                    } else {
                        pending_error.get_or_insert(e);
                    }
                }
            }
        }
    })
}

/// Execute a standalone, complete [`QueryPlan`] (no reformulation or
/// optimizer involvement) under `env`, returning the output relation and
/// the execution statistics. The plan's dependency DAG runs on the
/// environment's intra-query thread budget — the entry point the
/// benchmarks and parallelism tests use with hand-built plans.
pub fn execute_plan(plan: &QueryPlan, env: ExecEnv) -> Result<(Arc<Relation>, ExecutionStats)> {
    let (relation, stats, _) = execute_plan_traced(plan, env)?;
    Ok((relation, stats))
}

/// [`execute_plan`] returning the query's trace snapshot as well (`None`
/// when the environment's trace level is `Off`).
pub fn execute_plan_traced(
    plan: &QueryPlan,
    env: ExecEnv,
) -> Result<(
    Arc<Relation>,
    ExecutionStats,
    Option<tukwila_trace::TraceSnapshot>,
)> {
    let threads = env.intra_query_threads;
    let rt = PlanRuntime::for_plan(plan, env.clone());
    let mut stats = ExecutionStats::default();
    let mut series = Vec::new();
    match run_fragments(plan, &rt, threads, 3, &mut stats, &mut series)? {
        SchedOutcome::Finished => {
            let name = plan
                .fragment(plan.output)
                .map(|f| f.materialize_as.clone())
                .ok_or_else(|| TukwilaError::Plan("plan has no output fragment".into()))?;
            stats.peak_memory = env.memory.peak_used();
            let io = env.spill.stats().snapshot();
            stats.spill_tuples_written = io.tuples_written;
            stats.spill_tuples_read = io.tuples_read;
            stats.spill_bytes_written = io.bytes_written;
            stats.spill_bytes_read = io.bytes_read;
            let trace = if rt.trace().events_enabled() || rt.trace().metrics_enabled() {
                Some(rt.trace().snapshot())
            } else {
                None
            };
            Ok((env.local.get(&name)?, stats, trace))
        }
        SchedOutcome::Replan => Err(TukwilaError::Plan(
            "standalone plan requested re-optimization".into(),
        )),
    }
}
