//! # tukwila-core
//!
//! The Tukwila data integration system (Ives, Florescu, Friedman, Levy,
//! Weld — SIGMOD 1999): a query processor with **adaptivity designed into
//! its core**.
//!
//! This crate ties the subsystems together into the architecture of the
//! paper's Figure 2:
//!
//! ```text
//!  query ──▶ reformulator ──▶ optimizer ⇄ execution engine ──▶ answer
//!                 ▲               ▲  ▲          │
//!            mediated schema   catalog └─ statistics, events
//!                                           (replan / reschedule)
//! ```
//!
//! [`TukwilaSystem::execute`] runs the **interleaved planning and
//! execution** loop (§3): plans may be partial; fragments execute on the
//! [`scheduler`]'s dependency DAG (sequentially under a thread budget of
//! one — the paper's model — or concurrently over independent fragments
//! otherwise); rules raised during execution can reschedule blocked
//! fragments (query scrambling — under the DAG, "deprioritize while
//! siblings make progress") or terminate the plan and re-invoke the
//! optimizer with corrected statistics, which replans incrementally from
//! its saved search space.
//!
//! The [`tpch`] module provides a deployable TPC-D-style scenario — data
//! generation, simulated network sources, catalog with (optionally
//! deliberately wrong) statistics — used by the examples, the integration
//! tests, and the benchmark harness that regenerates the paper's figures.

pub mod scheduler;
pub mod stats;
pub mod system;
pub mod tpch;

pub use scheduler::{execute_plan, execute_plan_traced, SchedOutcome};
pub use stats::{ExecutionStats, QueryResult};
pub use system::{PreparedQuery, TukwilaSystem};
pub use tpch::{StatsQuality, TpchDeployment, TpchDeploymentBuilder};
