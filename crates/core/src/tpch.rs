//! Deployable TPC-D-style scenarios: data, simulated sources, catalog.
//!
//! The paper's evaluation (§6.1) runs scaled TPC-D data behind wrappers on
//! a network. [`TpchDeployment`] reproduces that setup in-process: it
//! generates the database, registers each table as a simulated network
//! source with a configurable link model, builds the mediated schema and a
//! catalog whose statistics can be **exact**, **deliberately wrong** (the
//! §6.4 setup: "correct source cardinalities, but … estimates of join
//! selectivities"), or **absent** (forcing partial plans). Mirrors can be
//! added for collector experiments.
//!
//! It also provides [`TpchDeployment::gold`] — a trusted reference
//! evaluator used by the integration tests to check every adaptive
//! execution against plain nested-loop semantics.

use std::collections::HashMap;

use tukwila_catalog::{AccessCost, Catalog, OverlapInfo, SourceDesc, TableStats};
use tukwila_common::{Relation, Result, TukwilaError};
use tukwila_exec::ExecEnv;
use tukwila_opt::{Optimizer, OptimizerConfig};
use tukwila_query::{ConjunctiveQuery, MediatedSchema, Reformulator};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};
use tukwila_tpchgen::{join_graph, table_schema, JoinEdge, TpchDb, TpchTable};

use crate::system::TukwilaSystem;

/// How truthful the catalog statistics are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatsQuality {
    /// Correct cardinalities and join selectivities.
    Exact,
    /// Correct source cardinalities but join selectivities off by this
    /// multiplicative factor — the §6.4 experimental condition.
    MisestimatedSelectivities(f64),
    /// No cardinality statistics at all (drives partial planning).
    Unknown,
}

/// Builder for a TPC-D deployment.
pub struct TpchDeploymentBuilder {
    scale: f64,
    seed: u64,
    tables: Vec<TpchTable>,
    default_link: LinkModel,
    links: HashMap<TpchTable, LinkModel>,
    stats: StatsQuality,
    mirrors: Vec<(TpchTable, String, LinkModel)>,
}

impl TpchDeploymentBuilder {
    /// Deployment at `scale` with RNG `seed`, all tables, instant links,
    /// exact statistics.
    pub fn new(scale: f64, seed: u64) -> Self {
        TpchDeploymentBuilder {
            scale,
            seed,
            tables: TpchTable::ALL.to_vec(),
            default_link: LinkModel::instant(),
            links: HashMap::new(),
            stats: StatsQuality::Exact,
            mirrors: Vec::new(),
        }
    }

    /// Deploy only these tables.
    pub fn tables(mut self, tables: &[TpchTable]) -> Self {
        self.tables = tables.to_vec();
        self
    }

    /// Default link model for all sources.
    pub fn default_link(mut self, link: LinkModel) -> Self {
        self.default_link = link;
        self
    }

    /// Override the link model of one table's source.
    pub fn link(mut self, table: TpchTable, link: LinkModel) -> Self {
        self.links.insert(table, link);
        self
    }

    /// Set statistics quality.
    pub fn stats(mut self, stats: StatsQuality) -> Self {
        self.stats = stats;
        self
    }

    /// Register a mirror of `table` under `name` with its own link model.
    pub fn mirror(mut self, table: TpchTable, name: &str, link: LinkModel) -> Self {
        self.mirrors.push((table, name.to_string(), link));
        self
    }

    /// Materialize the deployment.
    pub fn build(self) -> TpchDeployment {
        let db = TpchDb::generate(self.scale, self.seed);
        let registry = SourceRegistry::new();
        let mut catalog = Catalog::new();
        let mut mediated = MediatedSchema::new();

        for &table in &self.tables {
            let rel = db.table(table).clone();
            let link = self.links.get(&table).unwrap_or(&self.default_link).clone();
            let card = rel.len();
            let avg_bytes = rel.mem_size().checked_div(card).unwrap_or(64);
            registry.register(SimulatedSource::new(table.name(), rel, link.clone()));
            mediated.add_relation(table.name(), table_schema(table));
            let stats = match self.stats {
                StatsQuality::Unknown => TableStats::unknown(),
                _ => TableStats::new(card, avg_bytes),
            };
            catalog.add_source(
                SourceDesc::new(table.name(), table.name(), table_schema(table))
                    .with_stats(stats)
                    .with_cost(link_cost(&link)),
            );
        }
        for (table, name, link) in &self.mirrors {
            let rel = db.table(*table).clone();
            let card = rel.len();
            let avg_bytes = rel.mem_size().checked_div(card).unwrap_or(64);
            registry.register(SimulatedSource::new(name.clone(), rel, link.clone()));
            let stats = match self.stats {
                StatsQuality::Unknown => TableStats::unknown(),
                _ => TableStats::new(card, avg_bytes),
            };
            catalog.add_source(
                SourceDesc::new(name.clone(), table.name(), table_schema(*table))
                    .with_stats(stats)
                    .with_cost(link_cost(link)),
            );
            catalog.set_overlap(table.name(), name, OverlapInfo::symmetric(1.0));
        }
        // mirrors of the same table are also mirrors of each other
        for (i, (t1, n1, _)) in self.mirrors.iter().enumerate() {
            for (t2, n2, _) in self.mirrors.iter().skip(i + 1) {
                if t1 == t2 {
                    catalog.set_overlap(n1, n2, OverlapInfo::symmetric(1.0));
                }
            }
        }

        // Join selectivities from the FK structure: |A ⋈fk B| ≈ |A|, so
        // selectivity ≈ 1/|B| (the referenced side); the supplier–customer
        // attribute join distributes over the 25 nations.
        //
        // Misestimation alternates ×f and ÷f per edge: a *uniform* factor
        // cancels out of join-order comparisons (every candidate for the
        // same subset shares the same number of predicates), so it would
        // not make the optimizer pick bad orders — the paper's §6.4 setup
        // needs estimates that are wrong in *different directions*.
        for (i, edge) in join_graph().into_iter().enumerate() {
            if !self.tables.contains(&edge.from) || !self.tables.contains(&edge.to) {
                continue;
            }
            let true_sel = true_selectivity(&edge, &db);
            let sel = match self.stats {
                StatsQuality::MisestimatedSelectivities(f) => {
                    if i % 2 == 0 {
                        true_sel * f
                    } else {
                        true_sel / f
                    }
                }
                _ => true_sel,
            };
            catalog.set_join_selectivity(
                &format!("{}.{}", edge.from.name(), edge.from_col),
                &format!("{}.{}", edge.to.name(), edge.to_col),
                sel,
            );
        }

        TpchDeployment {
            db,
            registry,
            catalog,
            mediated,
            tables: self.tables,
        }
    }
}

fn link_cost(link: &LinkModel) -> AccessCost {
    AccessCost::new(
        link.initial_delay.as_secs_f64() * 1e3,
        link.per_tuple.as_secs_f64() * 1e3,
    )
}

/// True FK selectivity: 1 / |referenced relation| (or 1/|nation| for the
/// supplier–customer attribute join).
fn true_selectivity(edge: &JoinEdge, db: &TpchDb) -> f64 {
    use TpchTable::*;
    if edge.from == Supplier && edge.to == Customer {
        return 1.0 / 25.0;
    }
    1.0 / db.table(edge.to).len().max(1) as f64
}

/// A live TPC-D deployment: data, sources, catalog, mediated schema.
pub struct TpchDeployment {
    /// The generated database (for gold results).
    pub db: TpchDb,
    /// Registered simulated sources.
    pub registry: SourceRegistry,
    /// The data source catalog.
    pub catalog: Catalog,
    /// The mediated schema users query.
    pub mediated: MediatedSchema,
    tables: Vec<TpchTable>,
}

impl TpchDeployment {
    /// Builder entry point.
    pub fn builder(scale: f64, seed: u64) -> TpchDeploymentBuilder {
        TpchDeploymentBuilder::new(scale, seed)
    }

    /// Assemble a [`TukwilaSystem`] over this deployment.
    pub fn system(&self, config: OptimizerConfig) -> TukwilaSystem {
        self.system_with_env(config, ExecEnv::new(self.registry.clone()))
    }

    /// Assemble a system with an explicit intra-query thread budget
    /// (overriding the `TUKWILA_THREADS` default) — the parallelism tests'
    /// entry point.
    pub fn system_threads(&self, config: OptimizerConfig, threads: usize) -> TukwilaSystem {
        self.system_with_env(
            config,
            ExecEnv::new(self.registry.clone()).with_threads(threads),
        )
    }

    /// Assemble a system over a caller-built environment.
    pub fn system_with_env(&self, config: OptimizerConfig, env: ExecEnv) -> TukwilaSystem {
        let reformulator = Reformulator::new(self.mediated.clone());
        let optimizer = Optimizer::new(self.catalog.clone(), config);
        TukwilaSystem::new(reformulator, optimizer, env)
    }

    /// A conjunctive query joining `tables` along every join-graph edge
    /// among them.
    pub fn query_for(&self, name: &str, tables: &[TpchTable]) -> ConjunctiveQuery {
        let mut q =
            ConjunctiveQuery::new(name, tables.iter().map(|t| t.name().to_string()).collect());
        for edge in join_graph() {
            if tables.contains(&edge.from) && tables.contains(&edge.to) {
                q = q.join(
                    &format!("{}.{}", edge.from.name(), edge.from_col),
                    &format!("{}.{}", edge.to.name(), edge.to_col),
                );
            }
        }
        q
    }

    /// Tables deployed.
    pub fn tables(&self) -> &[TpchTable] {
        &self.tables
    }

    /// Trusted reference evaluation of a conjunctive query against the
    /// generated data (nested-loop semantics; no projection/filters beyond
    /// the join predicates).
    pub fn gold(&self, query: &ConjunctiveQuery) -> Result<Relation> {
        let first = TpchTable::from_name(&query.relations[0]).ok_or_else(|| {
            TukwilaError::Internal(format!("unknown table {}", query.relations[0]))
        })?;
        let mut cur = self.db.table(first).clone();
        let mut included = vec![query.relations[0].clone()];
        let mut applied = vec![false; query.joins.len()];

        while included.len() < query.relations.len() {
            let mut progressed = false;
            for (i, j) in query.joins.iter().enumerate() {
                if applied[i] {
                    continue;
                }
                let l_in = included.iter().any(|r| r == j.left_relation());
                let r_in = included.iter().any(|r| r == j.right_relation());
                if l_in == r_in {
                    continue; // both in (cycle; handled below) or both out
                }
                let (in_col, out_col, out_rel) = if l_in {
                    (&j.left, &j.right, j.right_relation())
                } else {
                    (&j.right, &j.left, j.left_relation())
                };
                let table = TpchTable::from_name(out_rel)
                    .ok_or_else(|| TukwilaError::Internal(format!("unknown table {out_rel}")))?;
                let right = self.db.table(table);
                let li = cur.schema().index_of(in_col)?;
                let ri = right.schema().index_of(out_col)?;
                cur = cur.nested_join(right, li, ri);
                included.push(out_rel.to_string());
                applied[i] = true;
                progressed = true;
            }
            if !progressed {
                return Err(TukwilaError::Internal(
                    "gold evaluator: disconnected join graph".into(),
                ));
            }
        }
        // remaining (cycle) predicates become filters
        for (i, j) in query.joins.iter().enumerate() {
            if applied[i] {
                continue;
            }
            let li = cur.schema().index_of(&j.left)?;
            let ri = cur.schema().index_of(&j.right)?;
            let schema = cur.schema().clone();
            let tuples = cur
                .into_tuples()
                .into_iter()
                .filter(|t| t.value(li).sql_eq(t.value(ri)) == Some(true))
                .collect();
            cur = Relation::new(schema, tuples)?;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpchDeployment {
        TpchDeployment::builder(0.002, 11)
            .tables(&[
                TpchTable::Region,
                TpchTable::Nation,
                TpchTable::Supplier,
                TpchTable::Partsupp,
            ])
            .build()
    }

    #[test]
    fn deployment_registers_sources_and_catalog() {
        let d = tiny();
        assert!(d.registry.contains("supplier"));
        assert!(d.catalog.source("supplier").is_ok());
        assert!(d.mediated.contains("supplier"));
        assert_eq!(
            d.catalog.cardinality("supplier"),
            Some(d.db.table(TpchTable::Supplier).len())
        );
    }

    #[test]
    fn selectivities_reflect_fk_structure() {
        let d = tiny();
        let sel = d
            .catalog
            .join_selectivity("supplier.s_nationkey", "nation.n_nationkey")
            .unwrap();
        assert!((sel - 1.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn misestimation_scales_selectivities_in_alternating_directions() {
        let d = TpchDeployment::builder(0.002, 11)
            .tables(&[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier])
            .stats(StatsQuality::MisestimatedSelectivities(10.0))
            .build();
        // edge 0 (nation–region) gets ×f, edge 1 (supplier–nation) gets ÷f
        let s0 = d
            .catalog
            .join_selectivity("nation.n_regionkey", "region.r_regionkey")
            .unwrap();
        assert!((s0 - 10.0 / 5.0).abs() < 1e-9, "s0={s0}");
        let s1 = d
            .catalog
            .join_selectivity("supplier.s_nationkey", "nation.n_nationkey")
            .unwrap();
        assert!((s1 - 0.1 / 25.0).abs() < 1e-9, "s1={s1}");
    }

    #[test]
    fn unknown_stats_hide_cardinalities() {
        let d = TpchDeployment::builder(0.002, 11)
            .tables(&[TpchTable::Nation, TpchTable::Supplier])
            .stats(StatsQuality::Unknown)
            .build();
        assert_eq!(d.catalog.cardinality("supplier"), None);
    }

    #[test]
    fn gold_evaluates_fk_join_cardinality() {
        let d = tiny();
        // supplier ⋈ nation: every supplier matches exactly one nation
        let q = d.query_for("q", &[TpchTable::Supplier, TpchTable::Nation]);
        let gold = d.gold(&q).unwrap();
        assert_eq!(gold.len(), d.db.table(TpchTable::Supplier).len());
    }

    #[test]
    fn gold_handles_chains() {
        let d = tiny();
        let q = d.query_for(
            "q",
            &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
        );
        let gold = d.gold(&q).unwrap();
        assert_eq!(gold.len(), d.db.table(TpchTable::Supplier).len());
        assert_eq!(
            gold.schema().arity(),
            3 + 4 + 5 // region + nation + supplier columns
        );
    }

    #[test]
    fn mirrors_share_relation_and_overlap() {
        let d = TpchDeployment::builder(0.002, 11)
            .tables(&[TpchTable::Nation, TpchTable::Supplier])
            .mirror(TpchTable::Supplier, "supplier_eu", LinkModel::instant())
            .build();
        assert!(d.registry.contains("supplier_eu"));
        assert!(d.catalog.are_mirrors("supplier", "supplier_eu"));
        let sources = d.catalog.sources_for("supplier");
        assert_eq!(sources.len(), 2);
    }
}
