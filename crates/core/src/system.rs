//! The interleaved planning and execution loop (§3).
//!
//! `TukwilaSystem::execute` is the paper's architecture in motion:
//!
//! 1. **Reformulate** the mediated-schema query into source-level leaves
//!    with disjunction (§2).
//! 2. **Optimize** — possibly into a *partial* plan when statistics are
//!    missing.
//! 3. **Execute fragments** one pipelined unit at a time, materializing
//!    results and collecting statistics.
//! 4. React to rule outcomes: **reschedule** blocked fragments behind
//!    runnable ones (query scrambling, §3.1.2), or **re-invoke the
//!    optimizer** with observed cardinalities — which replans incrementally
//!    from its saved search space (§6.5) and emits a corrected plan whose
//!    remaining work reuses the materializations already computed.
//!
//! The loop terminates when a complete plan's output fragment finishes, a
//! rule aborts the query, or the replan/retry budgets are exhausted.
//!
//! **Concurrency.** The system is shareable: every execution path takes
//! `&self`, the optimizer sits behind a mutex that is held only while
//! planning/replanning (never across fragment execution), and
//! [`TukwilaSystem::execute_in_env`] runs a query in a caller-provided
//! [`ExecEnv`] (fresh materialization namespace and memory pool, shared
//! sources/spill) so a service can drive many queries through one system
//! from many threads. The lifecycle is exposed as reusable stages —
//! [`TukwilaSystem::prepare`] (reformulate + optimize) and
//! [`TukwilaSystem::run_prepared`] (the fragment/replan loop) — which
//! `execute` merely composes.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};

use tukwila_common::{Relation, Result, TukwilaError};
use tukwila_exec::{CancelKind, ExecEnv, PlanRuntime, QueryControl};
use tukwila_opt::{Observation, Optimizer, PlannedQuery};
use tukwila_plan::{FragmentId, OpState, OperatorSpec, QuantityProvider, QueryPlan, SubjectRef};
use tukwila_query::{ConjunctiveQuery, ReformulatedQuery, Reformulator};
use tukwila_trace::TraceEvent;

use crate::stats::{ExecutionStats, QueryResult};

enum PlanRun {
    Finished { result_name: String },
    Replan { observations: Vec<Observation> },
}

/// A query after the reformulation and initial optimization stages: ready
/// for (repeated) fragment execution via [`TukwilaSystem::run_prepared`].
pub struct PreparedQuery {
    rq: ReformulatedQuery,
    planned: PlannedQuery,
}

impl PreparedQuery {
    /// The current plan (replaced on each replan).
    pub fn planned(&self) -> &PlannedQuery {
        &self.planned
    }
}

/// The Tukwila data integration system.
pub struct TukwilaSystem {
    reformulator: Reformulator,
    optimizer: Mutex<Optimizer>,
    env: ExecEnv,
    /// Maximum optimizer re-invocations per query.
    pub max_replans: usize,
    /// Maximum runs of a single fragment (rescheduling retries).
    pub max_fragment_retries: usize,
}

impl TukwilaSystem {
    /// Assemble a system from its components.
    pub fn new(reformulator: Reformulator, optimizer: Optimizer, env: ExecEnv) -> Self {
        TukwilaSystem {
            reformulator,
            optimizer: Mutex::new(optimizer),
            env,
            max_replans: 16,
            max_fragment_retries: 3,
        }
    }

    /// The engine environment (local store, memory pool, spill store).
    pub fn env(&self) -> &ExecEnv {
        &self.env
    }

    /// Make this system a distributed coordinator: exchanges over joins in
    /// every subsequent query (including per-query derived environments)
    /// scatter their partition pipelines through `executor` instead of
    /// local threads.
    pub fn install_shard_executor(
        &mut self,
        executor: std::sync::Arc<dyn tukwila_exec::ShardExecutor>,
    ) {
        self.env.shard_executor = Some(executor);
    }

    /// The optimizer (for inspecting the catalog after observations).
    /// Holds the planning lock while the guard lives — do not keep it
    /// across fragment execution.
    pub fn optimizer(&self) -> MutexGuard<'_, Optimizer> {
        self.optimizer.lock()
    }

    /// Execute a conjunctive query over the mediated schema.
    pub fn execute(&self, query: &ConjunctiveQuery) -> Result<QueryResult> {
        let mut stats = ExecutionStats::default();
        let control = QueryControl::unbounded_traced(self.env.trace_level);
        self.execute_controlled(query, &control, &mut stats)
    }

    /// [`TukwilaSystem::execute`] under a caller-owned [`QueryControl`]
    /// (cancellation, deadline), accumulating into caller-owned stats so
    /// partial statistics survive a cancelled or failed run. Each call
    /// derives a per-query environment ([`ExecEnv::for_query`]), so
    /// concurrent calls on one shared system cannot collide on
    /// materialization names or pollute each other's memory/spill
    /// accounting.
    pub fn execute_controlled(
        &self,
        query: &ConjunctiveQuery,
        control: &Arc<QueryControl>,
        stats: &mut ExecutionStats,
    ) -> Result<QueryResult> {
        self.execute_in_env(query, control, self.env.for_query(), stats)
    }

    /// Execute in a caller-provided environment — the service path: each
    /// concurrent query gets a derived environment
    /// ([`ExecEnv::for_query`]) so materializations and memory accounting
    /// stay per-query while sources and spill storage are shared.
    pub fn execute_in_env(
        &self,
        query: &ConjunctiveQuery,
        control: &Arc<QueryControl>,
        env: ExecEnv,
        stats: &mut ExecutionStats,
    ) -> Result<QueryResult> {
        let started = Instant::now();
        let spill_base = env.spill.stats().snapshot();
        let mut series: Vec<(u64, std::time::Duration)> = Vec::new();

        let outcome = (|| -> Result<Arc<Relation>> {
            control.check()?;
            let mut prepared = self.prepare(query)?;
            self.run_prepared(&mut prepared, control, &env, stats, &mut series)
        })();

        // A per-query env's spill store is scoped (counts only this
        // query's traffic); the snapshot delta additionally covers callers
        // passing a raw shared env. Memory peak is the env pool's.
        let io = env.spill.stats().snapshot().since(&spill_base);
        stats.spill_tuples_written = io.tuples_written;
        stats.spill_tuples_read = io.tuples_read;
        stats.spill_bytes_written = io.bytes_written;
        stats.spill_bytes_read = io.bytes_read;
        stats.peak_memory = env.memory.peak_used();
        stats.duration = started.elapsed();
        stats.time_to_first = stats.fragment_reports.last().and_then(|r| r.time_to_first);

        let trace = control.trace();
        match outcome {
            Ok(relation) => {
                if trace.events_enabled() {
                    trace.emit(TraceEvent::QueryCompleted {
                        outcome: "ok".into(),
                    });
                }
                let snapshot =
                    (trace.events_enabled() || trace.metrics_enabled()).then(|| trace.snapshot());
                Ok(QueryResult {
                    relation,
                    stats: stats.clone(),
                    series,
                    trace: snapshot,
                })
            }
            Err(e) => {
                match (&e, control.cancelled()) {
                    (TukwilaError::DeadlineExceeded { .. }, _) => {
                        stats.deadline_exceeded = true;
                    }
                    // A client/shutdown cancellation — distinct from a
                    // rule-driven abort, which also surfaces as
                    // `Cancelled` but without a tripped control.
                    (TukwilaError::Cancelled(_), Some(kind)) if kind != CancelKind::Deadline => {
                        stats.cancelled = true;
                    }
                    _ => {}
                }
                if trace.events_enabled() {
                    let outcome = if stats.deadline_exceeded {
                        "deadline"
                    } else if stats.cancelled {
                        "cancelled"
                    } else {
                        "error"
                    };
                    trace.emit(TraceEvent::QueryCompleted {
                        outcome: outcome.into(),
                    });
                }
                Err(e)
            }
        }
    }

    /// Stage 1 of the lifecycle: reformulate the mediated-schema query and
    /// run the initial optimization. Holds the planning lock only for the
    /// duration of this call.
    pub fn prepare(&self, query: &ConjunctiveQuery) -> Result<PreparedQuery> {
        let mut opt = self.optimizer.lock();
        let rq = self.reformulator.reformulate(query, opt.catalog())?;
        let planned = opt.plan(&rq)?;
        Ok(PreparedQuery { rq, planned })
    }

    /// Stage 2 of the lifecycle: drive the prepared query's execute →
    /// observe → replan loop to a final relation. Re-invocations of the
    /// optimizer take the planning lock briefly; no lock is held across
    /// fragment execution.
    pub fn run_prepared(
        &self,
        prepared: &mut PreparedQuery,
        control: &Arc<QueryControl>,
        env: &ExecEnv,
        stats: &mut ExecutionStats,
        series: &mut Vec<(u64, std::time::Duration)>,
    ) -> Result<Arc<Relation>> {
        loop {
            series.clear();
            let analysis = &prepared.planned.lowered.analysis;
            stats.plan_diag_warnings += analysis.warn_count();
            stats.plan_diag_infos += analysis.count(tukwila_plan::diag::Severity::Info);
            let run = self.run_plan(&prepared.planned, control, env, stats, series)?;
            match run {
                PlanRun::Finished { result_name } => {
                    return env.local.get(&result_name);
                }
                PlanRun::Replan { observations } => {
                    control.check()?;
                    if stats.replans >= self.max_replans {
                        return Err(TukwilaError::Optimizer(format!(
                            "replan budget ({}) exhausted",
                            self.max_replans
                        )));
                    }
                    stats.replans += 1;
                    let fragments_before = prepared.planned.lowered.plan.fragments.len() as u32;
                    prepared.planned = self.optimizer.lock().replan(
                        &prepared.rq,
                        prepared.planned.memo.take(),
                        &observations,
                    )?;
                    if control.trace().events_enabled() {
                        control.trace().emit(TraceEvent::ReplanInstalled {
                            fragments_before,
                            fragments_after: prepared.planned.lowered.plan.fragments.len() as u32,
                        });
                    }
                }
            }
        }
    }

    /// Run one plan to completion or to a replan request. Fragment
    /// execution is delegated to the DAG scheduler
    /// ([`crate::scheduler::run_fragments`]): sequential under a thread
    /// budget of one, concurrent over independent fragments otherwise.
    fn run_plan(
        &self,
        planned: &PlannedQuery,
        control: &Arc<QueryControl>,
        env: &ExecEnv,
        stats: &mut ExecutionStats,
        series: &mut Vec<(u64, std::time::Duration)>,
    ) -> Result<PlanRun> {
        let plan = &planned.lowered.plan;
        let rt = PlanRuntime::for_plan_controlled(plan, env.clone(), control.clone());
        let outcome = crate::scheduler::run_fragments(
            plan,
            &rt,
            env.intra_query_threads,
            self.max_fragment_retries,
            stats,
            series,
        )?;

        match outcome {
            crate::scheduler::SchedOutcome::Finished if plan.complete => {
                let result_name = plan
                    .fragment(plan.output)
                    .map(|f| f.materialize_as.clone())
                    .unwrap_or_else(|| "result".to_string());
                Ok(PlanRun::Finished { result_name })
            }
            // A mid-plan replan request, or a partial plan that ran out of
            // planned work: hand observations back to the optimizer for
            // the next planning step (§3).
            _ => Ok(PlanRun::Replan {
                observations: gather_observations(plan, &rt, &completed_fragments(plan, &rt), env),
            }),
        }
    }
}

/// Fragments whose state reached `Closed` — the completion set the
/// observation gatherer works from after the scheduler returns.
fn completed_fragments(plan: &QueryPlan, rt: &PlanRuntime) -> BTreeSet<FragmentId> {
    plan.fragments
        .iter()
        .filter(|f| rt.state(SubjectRef::Fragment(f.id)) == OpState::Closed)
        .map(|f| f.id)
        .collect()
}

/// Collect the statistics the engine ships back to the optimizer (§3.2):
/// cardinalities of materialized fragments and of every source that was
/// read to completion.
fn gather_observations(
    plan: &QueryPlan,
    rt: &PlanRuntime,
    completed: &BTreeSet<FragmentId>,
    env: &ExecEnv,
) -> Vec<Observation> {
    let mut out = Vec::new();
    for f in &plan.fragments {
        if completed.contains(&f.id) && f.materialize_as.starts_with("mat_") {
            if let Some(card) = env.local.cardinality(&f.materialize_as) {
                out.push(Observation {
                    name: f.materialize_as.clone(),
                    cardinality: card,
                });
            }
        }
    }
    for f in &plan.fragments {
        f.root.walk(&mut |node| {
            let mut record = |source: &str, subject: SubjectRef| {
                if rt.state(subject) == OpState::Closed {
                    out.push(Observation {
                        name: source.to_string(),
                        cardinality: rt.produced(subject) as usize,
                    });
                }
            };
            match &node.spec {
                OperatorSpec::WrapperScan { source, .. } => {
                    record(source, SubjectRef::Op(node.id));
                }
                OperatorSpec::Collector { children, .. } => {
                    for c in children {
                        record(&c.source, SubjectRef::Op(c.id));
                    }
                }
                _ => {}
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{StatsQuality, TpchDeployment};
    use std::time::Duration;
    use tukwila_opt::{OptimizerConfig, PipelinePolicy};
    use tukwila_source::LinkModel;
    use tukwila_tpchgen::TpchTable;

    const SF: f64 = 0.003;

    fn assert_gold(d: &TpchDeployment, q: &ConjunctiveQuery, result: &crate::QueryResult) {
        let gold = d.gold(q).unwrap();
        assert!(
            result.relation.bag_eq_unordered(&gold),
            "query `{}`: got {} tuples, want {}",
            q.name,
            result.relation.len(),
            gold.len()
        );
    }

    fn config(policy: PipelinePolicy) -> OptimizerConfig {
        OptimizerConfig {
            policy,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn two_table_join_end_to_end() {
        let d = TpchDeployment::builder(SF, 3)
            .tables(&[TpchTable::Nation, TpchTable::Supplier])
            .build();
        let q = d.query_for("q2", &[TpchTable::Supplier, TpchTable::Nation]);
        let sys = d.system(config(PipelinePolicy::Adaptive));
        let result = sys.execute(&q).unwrap();
        assert_gold(&d, &q, &result);
        assert_eq!(result.stats.replans, 0);
        assert!(!result.series.is_empty());
    }

    #[test]
    fn four_table_join_all_policies_agree_with_gold() {
        let d = TpchDeployment::builder(SF, 5)
            .tables(&[
                TpchTable::Region,
                TpchTable::Nation,
                TpchTable::Supplier,
                TpchTable::Partsupp,
            ])
            .build();
        let q = d.query_for(
            "q4",
            &[
                TpchTable::Region,
                TpchTable::Nation,
                TpchTable::Supplier,
                TpchTable::Partsupp,
            ],
        );
        for policy in [
            PipelinePolicy::FullyPipelined,
            PipelinePolicy::MaterializeEachJoin,
            PipelinePolicy::MaterializeAndReplan,
            PipelinePolicy::Adaptive,
        ] {
            let sys = d.system(config(policy));
            let result = sys.execute(&q).unwrap();
            assert_gold(&d, &q, &result);
        }
    }

    #[test]
    fn misestimates_trigger_replanning_and_stay_correct() {
        let d = TpchDeployment::builder(SF, 7)
            .tables(&[
                TpchTable::Nation,
                TpchTable::Supplier,
                TpchTable::Partsupp,
                TpchTable::Part,
            ])
            .stats(StatsQuality::MisestimatedSelectivities(40.0))
            .build();
        let q = d.query_for(
            "q-mis",
            &[
                TpchTable::Nation,
                TpchTable::Supplier,
                TpchTable::Partsupp,
                TpchTable::Part,
            ],
        );
        let sys = d.system(config(PipelinePolicy::MaterializeAndReplan));
        let result = sys.execute(&q).unwrap();
        assert!(
            result.stats.replans >= 1,
            "40x misestimate must trigger re-optimization"
        );
        assert_gold(&d, &q, &result);
    }

    #[test]
    fn unknown_statistics_drive_interleaved_partial_planning() {
        let d = TpchDeployment::builder(SF, 9)
            .tables(&[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier])
            .stats(StatsQuality::Unknown)
            .build();
        let q = d.query_for(
            "q-unknown",
            &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
        );
        let sys = d.system(config(PipelinePolicy::Adaptive));
        let result = sys.execute(&q).unwrap();
        assert!(
            result.stats.replans >= 1,
            "partial plans must return to the optimizer"
        );
        assert_gold(&d, &q, &result);
        // the optimizer learned true cardinalities along the way
        assert!(sys.optimizer().catalog().is_observed("supplier"));
    }

    #[test]
    fn transient_stall_is_rescheduled_and_recovers() {
        // nation's source stalls 300ms after 5 tuples; with a 50ms timeout
        // and rescheduling rules, execution puts the blocked fragment aside,
        // runs other work, then retries and succeeds.
        let stalling = LinkModel {
            stall_after: Some(5),
            stall_duration: Duration::from_millis(300),
            ..LinkModel::instant()
        };
        let d = TpchDeployment::builder(SF, 13)
            .tables(&[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier])
            .link(TpchTable::Nation, stalling)
            .build();
        let q = d.query_for(
            "q-stall",
            &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
        );
        let mut cfg = config(PipelinePolicy::MaterializeEachJoin);
        cfg.source_timeout_ms = Some(50);
        cfg.reschedule_on_timeout = true;
        let mut sys = d.system(cfg);
        sys.max_fragment_retries = 5;
        let result = sys.execute(&q).unwrap();
        assert!(
            result.stats.reschedules >= 1,
            "the stalled fragment must have been rescheduled"
        );
        assert_gold(&d, &q, &result);
    }

    #[test]
    fn dead_primary_with_mirror_still_answers() {
        let d = TpchDeployment::builder(SF, 17)
            .tables(&[TpchTable::Nation, TpchTable::Supplier])
            .link(TpchTable::Supplier, LinkModel::down())
            .mirror(TpchTable::Supplier, "supplier_mirror", LinkModel::instant())
            .build();
        let q = d.query_for("q-mirror", &[TpchTable::Supplier, TpchTable::Nation]);
        let sys = d.system(config(PipelinePolicy::Adaptive));
        let result = sys.execute(&q).unwrap();
        assert_gold(&d, &q, &result);
    }

    #[test]
    fn unreachable_single_source_fails_cleanly() {
        let d = TpchDeployment::builder(SF, 19)
            .tables(&[TpchTable::Nation, TpchTable::Supplier])
            .link(TpchTable::Supplier, LinkModel::down())
            .build();
        let q = d.query_for("q-dead", &[TpchTable::Supplier, TpchTable::Nation]);
        let sys = d.system(config(PipelinePolicy::Adaptive));
        let err = sys.execute(&q).unwrap_err();
        assert_eq!(err.kind(), "source_unavailable");
    }

    #[test]
    fn seven_table_join_completes() {
        let tables = [
            TpchTable::Region,
            TpchTable::Nation,
            TpchTable::Supplier,
            TpchTable::Customer,
            TpchTable::Orders,
            TpchTable::Partsupp,
            TpchTable::Part,
        ];
        let d = TpchDeployment::builder(0.002, 23).tables(&tables).build();
        let q = d.query_for("q7", &tables);
        let sys = d.system(config(PipelinePolicy::Adaptive));
        let result = sys.execute(&q).unwrap();
        assert_gold(&d, &q, &result);
    }

    #[test]
    fn deadline_cancels_mid_fragment_and_is_reported_in_stats() {
        // supplier stalls 10s after 5 tuples; a 100ms deadline must cancel
        // the run long before the stall ends and flag the stats —
        // distinctly from a rule-driven abort.
        let stalling = LinkModel {
            stall_after: Some(5),
            stall_duration: Duration::from_secs(10),
            ..LinkModel::instant()
        };
        let d = TpchDeployment::builder(SF, 29)
            .tables(&[TpchTable::Nation, TpchTable::Supplier])
            .link(TpchTable::Supplier, stalling)
            .build();
        let q = d.query_for("q-deadline", &[TpchTable::Supplier, TpchTable::Nation]);
        let sys = d.system(config(PipelinePolicy::Adaptive));
        let control = tukwila_exec::QueryControl::with_deadline(Duration::from_millis(100));
        let mut stats = ExecutionStats::default();
        let started = Instant::now();
        let err = sys
            .execute_controlled(&q, &control, &mut stats)
            .unwrap_err();
        assert_eq!(err.kind(), "deadline_exceeded");
        assert!(stats.deadline_exceeded, "deadline must be flagged in stats");
        assert!(!stats.cancelled, "a deadline is not a client cancel");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "cancellation must interrupt the stalled source promptly"
        );
        assert!(stats.duration > Duration::ZERO);
    }

    #[test]
    fn client_cancel_is_reported_in_stats() {
        let stalling = LinkModel {
            stall_after: Some(5),
            stall_duration: Duration::from_secs(10),
            ..LinkModel::instant()
        };
        let d = TpchDeployment::builder(SF, 37)
            .tables(&[TpchTable::Nation, TpchTable::Supplier])
            .link(TpchTable::Supplier, stalling)
            .build();
        let q = d.query_for("q-cancel", &[TpchTable::Supplier, TpchTable::Nation]);
        let sys = d.system(config(PipelinePolicy::Adaptive));
        let control = tukwila_exec::QueryControl::unbounded();
        let canceller = {
            let control = control.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(60));
                control.cancel(tukwila_exec::CancelKind::User);
            })
        };
        let mut stats = ExecutionStats::default();
        let started = Instant::now();
        let err = sys
            .execute_controlled(&q, &control, &mut stats)
            .unwrap_err();
        canceller.join().unwrap();
        assert_eq!(err.kind(), "cancelled");
        assert!(stats.cancelled);
        assert!(!stats.deadline_exceeded);
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn concurrent_direct_executes_on_one_system_stay_isolated() {
        // Even without the service tier, `execute(&self)` must be safe to
        // call from several threads: each call derives a per-query env, so
        // materialization names cannot collide across queries.
        let d = TpchDeployment::builder(SF, 43)
            .tables(&[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier])
            .build();
        let q2 = d.query_for("q2", &[TpchTable::Supplier, TpchTable::Nation]);
        let q3 = d.query_for(
            "q3",
            &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
        );
        let sys = d.system(config(PipelinePolicy::MaterializeEachJoin));
        let gold2 = d.gold(&q2).unwrap();
        let gold3 = d.gold(&q3).unwrap();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|i| {
                    let (q, gold) = if i % 2 == 0 {
                        (&q2, &gold2)
                    } else {
                        (&q3, &gold3)
                    };
                    let sys = &sys;
                    s.spawn(move || {
                        let result = sys.execute(q).unwrap();
                        assert!(
                            result.relation.bag_eq_unordered(gold),
                            "concurrent direct execute diverged"
                        );
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }

    #[test]
    fn prepare_and_run_prepared_compose_like_execute() {
        let d = TpchDeployment::builder(SF, 41)
            .tables(&[TpchTable::Nation, TpchTable::Supplier])
            .build();
        let q = d.query_for("q-stages", &[TpchTable::Supplier, TpchTable::Nation]);
        let sys = d.system(config(PipelinePolicy::Adaptive));
        let mut prepared = sys.prepare(&q).unwrap();
        let control = tukwila_exec::QueryControl::unbounded();
        let env = sys.env().for_query();
        let mut stats = ExecutionStats::default();
        let mut series = Vec::new();
        let relation = sys
            .run_prepared(&mut prepared, &control, &env, &mut stats, &mut series)
            .unwrap();
        let gold = d.gold(&q).unwrap();
        assert!(relation.bag_eq_unordered(&gold));
        assert!(!series.is_empty());
    }
}
