//! # tukwila-query
//!
//! Conjunctive (select-project-join) queries over a **mediated schema**, and
//! the Tukwila **query reformulator** (§2).
//!
//! A Tukwila user poses queries against virtual mediated relations whose
//! extensions are not stored anywhere. The reformulator rewrites such a
//! query into one referring to concrete data sources; per the paper's scope
//! it produces "a single query that may include **disjunction at the
//! leaves**": each mediated relation maps to the set of (possibly
//! overlapping or mirrored) sources that serve it, which the optimizer later
//! lowers to a wrapper scan (one source) or a dynamic collector (several).

pub mod ast;
pub mod reformulate;

pub use ast::{ConjunctiveQuery, JoinPredicate, MediatedSchema};
pub use reformulate::{LeafAlternatives, ReformulatedQuery, Reformulator};
