//! Query AST: mediated schemas and conjunctive queries.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use tukwila_common::{Result, Schema, TukwilaError};
use tukwila_plan::Predicate;

/// The mediated (virtual) schema users query against (§2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MediatedSchema {
    relations: BTreeMap<String, Schema>,
}

impl MediatedSchema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a mediated relation.
    pub fn add_relation(&mut self, name: impl Into<String>, schema: Schema) {
        self.relations.insert(name.into(), schema);
    }

    /// Look up a relation's schema.
    pub fn relation(&self, name: &str) -> Result<&Schema> {
        self.relations.get(name).ok_or_else(|| {
            TukwilaError::Reformulation(format!("unknown mediated relation `{name}`"))
        })
    }

    /// Whether a relation exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// All relation names (sorted).
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }
}

/// An equi-join predicate between two (qualified) mediated columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinPredicate {
    /// Left column, qualified (`relation.column`).
    pub left: String,
    /// Right column, qualified.
    pub right: String,
}

impl JoinPredicate {
    /// Build a join predicate.
    pub fn new(left: impl Into<String>, right: impl Into<String>) -> Self {
        JoinPredicate {
            left: left.into(),
            right: right.into(),
        }
    }

    /// The relation qualifier of the left column.
    pub fn left_relation(&self) -> &str {
        self.left.split('.').next().unwrap_or("")
    }

    /// The relation qualifier of the right column.
    pub fn right_relation(&self) -> &str {
        self.right.split('.').next().unwrap_or("")
    }
}

/// A conjunctive (select-project-join) query over the mediated schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// Query name (diagnostics, bench labels).
    pub name: String,
    /// Mediated relations joined (the FROM list).
    pub relations: Vec<String>,
    /// Equi-join predicates.
    pub joins: Vec<JoinPredicate>,
    /// Additional selection predicates (over qualified mediated columns).
    pub filters: Vec<Predicate>,
    /// Output columns; `None` = select *.
    pub projection: Option<Vec<String>>,
}

impl ConjunctiveQuery {
    /// Build a `select *` query.
    pub fn new(name: impl Into<String>, relations: Vec<String>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            relations,
            joins: Vec::new(),
            filters: Vec::new(),
            projection: None,
        }
    }

    /// Add an equi-join predicate.
    pub fn join(mut self, left: &str, right: &str) -> Self {
        self.joins.push(JoinPredicate::new(left, right));
        self
    }

    /// Add a selection predicate.
    pub fn filter(mut self, p: Predicate) -> Self {
        self.filters.push(p);
        self
    }

    /// Set the projection.
    pub fn project(mut self, cols: Vec<String>) -> Self {
        self.projection = Some(cols);
        self
    }

    /// Check the query is well-formed against a mediated schema: relations
    /// exist, join columns resolve, the join graph is connected (no
    /// unintended cross products).
    pub fn validate(&self, schema: &MediatedSchema) -> Result<()> {
        if self.relations.is_empty() {
            return Err(TukwilaError::Reformulation(format!(
                "query `{}` has no relations",
                self.name
            )));
        }
        for r in &self.relations {
            schema.relation(r)?;
        }
        for j in &self.joins {
            for (col, rel) in [(&j.left, j.left_relation()), (&j.right, j.right_relation())] {
                if !self.relations.iter().any(|r| r == rel) {
                    return Err(TukwilaError::Reformulation(format!(
                        "join column `{col}` references relation `{rel}` not in query `{}`",
                        self.name
                    )));
                }
                let rel_schema = schema.relation(rel)?;
                let bare = col.split('.').nth(1).unwrap_or(col);
                rel_schema.index_of(bare).map_err(|_| {
                    TukwilaError::Reformulation(format!(
                        "join column `{col}` not found in relation `{rel}`"
                    ))
                })?;
            }
        }
        if !self.is_join_connected() {
            return Err(TukwilaError::Reformulation(format!(
                "query `{}` has a disconnected join graph (cross product)",
                self.name
            )));
        }
        Ok(())
    }

    /// Whether the join predicates connect all relations.
    pub fn is_join_connected(&self) -> bool {
        if self.relations.len() <= 1 {
            return true;
        }
        let mut reached = vec![false; self.relations.len()];
        reached[0] = true;
        let idx = |name: &str| self.relations.iter().position(|r| r == name);
        let mut changed = true;
        while changed {
            changed = false;
            for j in &self.joins {
                if let (Some(a), Some(b)) = (idx(j.left_relation()), idx(j.right_relation())) {
                    if reached[a] != reached[b] {
                        reached[a] = true;
                        reached[b] = true;
                        changed = true;
                    }
                }
            }
        }
        reached.iter().all(|&r| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_common::DataType;

    fn mediated() -> MediatedSchema {
        let mut m = MediatedSchema::new();
        m.add_relation(
            "book",
            Schema::of("book", &[("isbn", DataType::Str), ("title", DataType::Str)]),
        );
        m.add_relation(
            "review",
            Schema::of(
                "review",
                &[("isbn", DataType::Str), ("score", DataType::Int)],
            ),
        );
        m
    }

    #[test]
    fn valid_query_passes() {
        let q = ConjunctiveQuery::new("q", vec!["book".into(), "review".into()])
            .join("book.isbn", "review.isbn");
        assert!(q.validate(&mediated()).is_ok());
    }

    #[test]
    fn unknown_relation_rejected() {
        let q = ConjunctiveQuery::new("q", vec!["movie".into()]);
        assert_eq!(q.validate(&mediated()).unwrap_err().kind(), "reformulation");
    }

    #[test]
    fn unknown_join_column_rejected() {
        let q = ConjunctiveQuery::new("q", vec!["book".into(), "review".into()])
            .join("book.nope", "review.isbn");
        assert!(q.validate(&mediated()).is_err());
    }

    #[test]
    fn join_column_on_foreign_relation_rejected() {
        let q = ConjunctiveQuery::new("q", vec!["book".into()]).join("book.isbn", "review.isbn");
        assert!(q.validate(&mediated()).is_err());
    }

    #[test]
    fn cross_product_rejected() {
        let q = ConjunctiveQuery::new("q", vec!["book".into(), "review".into()]);
        let err = q.validate(&mediated()).unwrap_err();
        assert!(err.to_string().contains("disconnected"));
    }

    #[test]
    fn single_relation_is_connected() {
        let q = ConjunctiveQuery::new("q", vec!["book".into()]);
        assert!(q.validate(&mediated()).is_ok());
    }

    #[test]
    fn join_predicate_relation_extraction() {
        let j = JoinPredicate::new("a.x", "b.y");
        assert_eq!(j.left_relation(), "a");
        assert_eq!(j.right_relation(), "b");
    }
}
