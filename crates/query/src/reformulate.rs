//! The query reformulator (§2).
//!
//! Converts a user's query over the mediated schema into a source-level
//! query: each mediated relation becomes a **leaf with alternatives** — the
//! list of registered sources serving it, annotated with mirror/overlap
//! information from the catalog. A leaf with one alternative lowers to a
//! wrapper scan; a leaf with several lowers to a dynamic collector whose
//! policy the optimizer generates from the overlap data (§4.1).

use serde::{Deserialize, Serialize};

use tukwila_catalog::Catalog;
use tukwila_common::{Result, TukwilaError};

use crate::ast::{ConjunctiveQuery, MediatedSchema};

/// The disjunction of sources serving one mediated relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafAlternatives {
    /// The mediated relation this leaf instantiates.
    pub mediated_relation: String,
    /// Source names, in catalog order (the optimizer reorders by policy).
    pub sources: Vec<String>,
    /// Whether all the sources are pairwise mirrors (collector may stop
    /// after the first one that delivers everything).
    pub all_mirrors: bool,
}

impl LeafAlternatives {
    /// Whether the leaf needs a collector (more than one source).
    pub fn is_disjunctive(&self) -> bool {
        self.sources.len() > 1
    }
}

/// A reformulated query: the original conjunctive structure with each
/// relation bound to its source alternatives.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReformulatedQuery {
    /// The original user query.
    pub query: ConjunctiveQuery,
    /// One entry per relation in `query.relations`, same order.
    pub leaves: Vec<LeafAlternatives>,
}

impl ReformulatedQuery {
    /// The leaf for a given mediated relation.
    pub fn leaf(&self, relation: &str) -> Option<&LeafAlternatives> {
        self.leaves.iter().find(|l| l.mediated_relation == relation)
    }

    /// Total number of sources mentioned.
    pub fn source_count(&self) -> usize {
        self.leaves.iter().map(|l| l.sources.len()).sum()
    }
}

/// The reformulation engine: mediated schema + catalog.
#[derive(Debug, Clone)]
pub struct Reformulator {
    schema: MediatedSchema,
}

impl Reformulator {
    /// Build a reformulator for a mediated schema.
    pub fn new(schema: MediatedSchema) -> Self {
        Reformulator { schema }
    }

    /// The mediated schema.
    pub fn schema(&self) -> &MediatedSchema {
        &self.schema
    }

    /// Reformulate `query` against `catalog`. Fails if the query is
    /// malformed or a relation has no covering source.
    pub fn reformulate(
        &self,
        query: &ConjunctiveQuery,
        catalog: &Catalog,
    ) -> Result<ReformulatedQuery> {
        query.validate(&self.schema)?;
        let mut leaves = Vec::with_capacity(query.relations.len());
        for rel in &query.relations {
            let descs = catalog.sources_for(rel);
            if descs.is_empty() {
                return Err(TukwilaError::Reformulation(format!(
                    "no data source covers mediated relation `{rel}`"
                )));
            }
            let sources: Vec<String> = descs.iter().map(|d| d.name.clone()).collect();
            let all_mirrors = sources.len() > 1
                && sources.iter().enumerate().all(|(i, a)| {
                    sources
                        .iter()
                        .skip(i + 1)
                        .all(|b| catalog.are_mirrors(a, b))
                });
            leaves.push(LeafAlternatives {
                mediated_relation: rel.clone(),
                sources,
                all_mirrors,
            });
        }
        Ok(ReformulatedQuery {
            query: query.clone(),
            leaves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_catalog::{OverlapInfo, SourceDesc};
    use tukwila_common::{DataType, Schema};

    fn setup() -> (Reformulator, Catalog) {
        let mut m = MediatedSchema::new();
        let book = Schema::of("book", &[("isbn", DataType::Str)]);
        let review = Schema::of("review", &[("isbn", DataType::Str)]);
        m.add_relation("book", book.clone());
        m.add_relation("review", review.clone());

        let mut c = Catalog::new();
        c.add_source(SourceDesc::new("books-eu", "book", book.clone()));
        c.add_source(SourceDesc::new("books-us", "book", book));
        c.add_source(SourceDesc::new("reviews-1", "review", review));
        c.set_overlap("books-eu", "books-us", OverlapInfo::symmetric(1.0));
        (Reformulator::new(m), c)
    }

    #[test]
    fn reformulates_to_leaf_alternatives() {
        let (r, c) = setup();
        let q = ConjunctiveQuery::new("q", vec!["book".into(), "review".into()])
            .join("book.isbn", "review.isbn");
        let rq = r.reformulate(&q, &c).unwrap();
        assert_eq!(rq.leaves.len(), 2);
        let book = rq.leaf("book").unwrap();
        assert_eq!(book.sources, vec!["books-eu", "books-us"]);
        assert!(book.is_disjunctive());
        assert!(book.all_mirrors);
        let review = rq.leaf("review").unwrap();
        assert!(!review.is_disjunctive());
        assert_eq!(rq.source_count(), 3);
    }

    #[test]
    fn uncovered_relation_is_error() {
        let (_r, c) = setup();
        let mut m2 = MediatedSchema::new();
        m2.add_relation("movie", Schema::of("movie", &[("id", DataType::Int)]));
        let r2 = Reformulator::new(m2);
        let q = ConjunctiveQuery::new("q", vec!["movie".into()]);
        let err = r2.reformulate(&q, &c).unwrap_err();
        assert!(err.to_string().contains("movie"));
    }

    #[test]
    fn partial_overlap_is_not_mirror() {
        let (r, mut c) = setup();
        c.set_overlap("books-eu", "books-us", OverlapInfo::symmetric(0.6));
        let q = ConjunctiveQuery::new("q", vec!["book".into()]);
        let rq = r.reformulate(&q, &c).unwrap();
        assert!(!rq.leaf("book").unwrap().all_mirrors);
    }

    #[test]
    fn invalid_query_rejected_before_source_lookup() {
        let (r, c) = setup();
        let q = ConjunctiveQuery::new("q", vec!["book".into(), "review".into()]);
        // no join predicates → cross product → reformulation error
        assert!(r.reformulate(&q, &c).is_err());
    }
}
