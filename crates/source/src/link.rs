//! Network link models.
//!
//! A [`LinkModel`] describes how tuples of a source arrive at the execution
//! engine. The presets are scaled reproductions of the paper's two
//! environments (§6.1–§6.2): a 10 Mbps LAN, and a wide-area path measured at
//! 82.1 KB/s with ≈145 ms round-trip time. We preserve the *ratios* (WAN
//! bandwidth ≈ 1/15 of LAN; RTT dominates initial delay) while shrinking
//! absolute times so benches run in seconds rather than hours.

use std::time::Duration;

/// Arrival-process model for one source connection.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Delay before the first tuple (connection setup + query dispatch +
    /// RTT; the paper's "significant initial delays").
    pub initial_delay: Duration,
    /// Inter-tuple service time within a burst (inverse bandwidth).
    pub per_tuple: Duration,
    /// Tuples delivered per burst (batching by the network stack/wrapper).
    pub burst_size: usize,
    /// Pause between bursts ("bursty arrivals of data thereafter").
    pub burst_gap: Duration,
    /// Uniform ±fraction jitter applied to each delay (seeded per
    /// connection, deterministic).
    pub jitter_frac: f64,
    /// After this many tuples the source stalls for `stall_duration`
    /// (drives `timeout(n)` events / query scrambling).
    pub stall_after: Option<usize>,
    /// Length of the injected stall.
    pub stall_duration: Duration,
    /// After this many tuples the connection errors out permanently
    /// (drives `error` events / collector fallback).
    pub fail_after: Option<usize>,
    /// The source refuses connections entirely.
    pub unavailable: bool,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::instant()
    }
}

impl LinkModel {
    /// No delays at all — unit tests and correctness benches.
    pub fn instant() -> Self {
        LinkModel {
            initial_delay: Duration::ZERO,
            per_tuple: Duration::ZERO,
            burst_size: usize::MAX,
            burst_gap: Duration::ZERO,
            jitter_frac: 0.0,
            stall_after: None,
            stall_duration: Duration::ZERO,
            fail_after: None,
            unavailable: false,
        }
    }

    /// Scaled 10 Mbps-LAN-like link: short initial delay, high bandwidth,
    /// mild burstiness. `scale` multiplies all delays (1.0 = bench preset).
    pub fn lan(scale: f64) -> Self {
        LinkModel {
            initial_delay: scale_dur(Duration::from_millis(8), scale),
            per_tuple: scale_dur(Duration::from_micros(12), scale),
            burst_size: 256,
            burst_gap: scale_dur(Duration::from_micros(600), scale),
            jitter_frac: 0.1,
            ..LinkModel::instant()
        }
    }

    /// Scaled wide-area link (the INRIA echo-server path): long initial
    /// delay (RTT-dominated), ~15× lower bandwidth than [`LinkModel::lan`],
    /// strong burstiness.
    pub fn wide_area(scale: f64) -> Self {
        LinkModel {
            initial_delay: scale_dur(Duration::from_millis(45), scale),
            per_tuple: scale_dur(Duration::from_micros(180), scale),
            burst_size: 64,
            burst_gap: scale_dur(Duration::from_millis(3), scale),
            jitter_frac: 0.25,
            ..LinkModel::instant()
        }
    }

    /// A link that stalls permanently after `n` tuples — the "source stops
    /// responding mid-transfer" scenario of query scrambling (§3.1.2).
    pub fn stalling(n: usize) -> Self {
        LinkModel {
            stall_after: Some(n),
            stall_duration: Duration::from_secs(3600),
            ..LinkModel::instant()
        }
    }

    /// A link that errors after `n` tuples.
    pub fn failing(n: usize) -> Self {
        LinkModel {
            fail_after: Some(n),
            ..LinkModel::instant()
        }
    }

    /// A source that cannot be contacted at all.
    pub fn down() -> Self {
        LinkModel {
            unavailable: true,
            ..LinkModel::instant()
        }
    }

    /// Multiply every delay by `factor` (e.g. build "slow mirror" variants).
    pub fn slowed(mut self, factor: f64) -> Self {
        self.initial_delay = scale_dur(self.initial_delay, factor);
        self.per_tuple = scale_dur(self.per_tuple, factor);
        self.burst_gap = scale_dur(self.burst_gap, factor);
        self
    }

    /// Estimated time to deliver `n` tuples (no jitter) — used by tests and
    /// by the optimizer's source-cost model.
    pub fn estimated_transfer(&self, n: usize) -> Duration {
        if n == 0 {
            return self.initial_delay;
        }
        let bursts = if self.burst_size == usize::MAX {
            0
        } else {
            (n - 1) / self.burst_size.max(1)
        };
        self.initial_delay
            + self.per_tuple.mul_f64(n as f64)
            + self.burst_gap.mul_f64(bursts as f64)
    }
}

fn scale_dur(d: Duration, scale: f64) -> Duration {
    if scale <= 0.0 {
        Duration::ZERO
    } else {
        d.mul_f64(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_has_no_delays() {
        let m = LinkModel::instant();
        assert_eq!(m.estimated_transfer(1000), Duration::ZERO);
    }

    #[test]
    fn wan_slower_than_lan() {
        let lan = LinkModel::lan(1.0).estimated_transfer(10_000);
        let wan = LinkModel::wide_area(1.0).estimated_transfer(10_000);
        assert!(wan > lan * 5, "wan {wan:?} should be ≫ lan {lan:?}");
    }

    #[test]
    fn slowed_scales_delays() {
        let base = LinkModel::lan(1.0);
        let slow = base.clone().slowed(3.0);
        assert_eq!(slow.per_tuple, base.per_tuple.mul_f64(3.0));
        assert_eq!(slow.burst_size, base.burst_size);
    }

    #[test]
    fn estimated_transfer_counts_bursts() {
        let m = LinkModel {
            initial_delay: Duration::from_millis(10),
            per_tuple: Duration::from_millis(1),
            burst_size: 10,
            burst_gap: Duration::from_millis(5),
            ..LinkModel::instant()
        };
        // 25 tuples → 2 full burst gaps (after tuples 10 and 20)
        let t = m.estimated_transfer(25);
        assert_eq!(t, Duration::from_millis(10 + 25 + 10));
    }

    #[test]
    fn zero_scale_zeroes_delays() {
        let m = LinkModel::lan(0.0);
        assert_eq!(m.initial_delay, Duration::ZERO);
        assert_eq!(m.per_tuple, Duration::ZERO);
    }
}
