//! # tukwila-source
//!
//! Simulated autonomous, network-bound data sources and the wrapper layer —
//! the substitute for the paper's IBM DB2 servers, JDBC wrappers, 10 Mbps
//! Ethernet LAN, and the INRIA echo-server WAN path (§5, §6.1).
//!
//! The phenomena Tukwila adapts to are properties of the *arrival process*
//! (§1.1): significant initial delays, bursty transfer, slow mirrors,
//! unavailable sources. [`LinkModel`] reproduces exactly those knobs:
//!
//! * `initial_delay` — time before the first tuple arrives,
//! * `per_tuple` + `burst_size`/`burst_gap` — bandwidth and burstiness,
//! * `jitter` — seeded, deterministic-per-connection random variation,
//! * `stall_after` / `fail_after` / `unavailable` — fault injection driving
//!   the timeout, error, and collector-fallback rules.
//!
//! A [`SimulatedSource`] pairs a relation with a link model; a
//! [`Wrapper`] exposes it through the paper's wrapper interface (atomic
//! fetch queries, optional prefetch buffering — "Wrappers w/ buffering" in
//! Figure 2). Delays are real wall-clock sleeps scaled to milliseconds:
//! adaptive behaviour is preserved, absolute times shrink (DESIGN.md §3).

pub mod cache;
pub mod link;
pub mod registry;
pub mod source;
pub mod wrapper;

pub use cache::{CacheLookup, CacheStats, FetchLease, SourceQueryKey, SourceResultCache};
pub use link::LinkModel;
pub use registry::SourceRegistry;
pub use source::{SimulatedSource, SourceBatchEvent, SourceConnection, SourceEvent};
pub use wrapper::{FetchVia, Wrapper, WrapperStream};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Sleep in small chunks so a blocked source thread can be cancelled
/// (collector `deactivate`, engine shutdown). Returns `false` if cancelled
/// before the full duration elapsed.
pub fn interruptible_sleep(total: Duration, cancel: &AtomicBool) -> bool {
    const CHUNK: Duration = Duration::from_millis(2);
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if cancel.load(Ordering::Relaxed) {
            return false;
        }
        let step = remaining.min(CHUNK);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
    !cancel.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Instant;

    #[test]
    fn interruptible_sleep_completes() {
        let cancel = AtomicBool::new(false);
        let start = Instant::now();
        assert!(interruptible_sleep(Duration::from_millis(10), &cancel));
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn interruptible_sleep_cancels_immediately() {
        let cancel = AtomicBool::new(true);
        let start = Instant::now();
        assert!(!interruptible_sleep(Duration::from_millis(500), &cancel));
        assert!(start.elapsed() < Duration::from_millis(100));
    }
}
