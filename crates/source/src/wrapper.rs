//! The wrapper layer.
//!
//! Tukwila's execution engine "communicates with the data sources through a
//! set of wrapper programs" (§2) that accept *atomic fetch queries*
//! (footnote 2: relational operators are applied inside the engine, not at
//! the wrapper). Figure 2 shows the wrappers with buffering; §8 mentions
//! optimistic prefetching as the natural extension. [`Wrapper::fetch`]
//! returns a pull stream straight off the connection;
//! [`Wrapper::fetch_prefetching`] interposes a buffering thread that reads
//! ahead into a bounded queue — the configuration used by the prefetching
//! ablation (DESIGN.md §5).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{bounded, Receiver};

use tukwila_common::{BatchBuilder, Schema, Tuple};

use crate::source::{SimulatedSource, SourceBatchEvent, SourceConnection, SourceEvent};

/// A wrapper bound to one data source.
#[derive(Clone)]
pub struct Wrapper {
    source: Arc<SimulatedSource>,
    conn_counter: Arc<std::sync::atomic::AtomicU64>,
}

impl std::fmt::Debug for Wrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wrapper")
            .field("source", &self.source.name())
            .finish()
    }
}

impl Wrapper {
    /// Wrap a source.
    pub fn new(source: SimulatedSource) -> Self {
        Wrapper {
            source: Arc::new(source),
            conn_counter: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Name of the wrapped source.
    pub fn source_name(&self) -> &str {
        self.source.name()
    }

    /// Schema of fetch results.
    pub fn schema(&self) -> &Schema {
        self.source.schema()
    }

    /// True cardinality of the source (the engine reports it to the
    /// optimizer after a full read; the catalog may only have an estimate).
    pub fn cardinality(&self) -> usize {
        self.source.cardinality()
    }

    /// Issue an atomic fetch query: stream the source's relation.
    pub fn fetch(&self) -> WrapperStream {
        let ordinal = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        WrapperStream::Direct(self.source.connect(ordinal))
    }

    /// Fetch with a prefetching buffer thread of capacity `buffer` tuples.
    /// The thread keeps pulling from the source while the consumer is busy,
    /// overlapping network wait with computation.
    pub fn fetch_prefetching(&self, buffer: usize) -> WrapperStream {
        let ordinal = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        let mut conn = self.source.connect(ordinal);
        let cancel = conn.cancel_handle();
        let (tx, rx) = bounded::<SourceEvent>(buffer.max(1));
        let handle = std::thread::spawn(move || loop {
            let ev = conn.next_event();
            let done = !matches!(ev, SourceEvent::Tuple(_));
            if tx.send(ev).is_err() || done {
                return;
            }
        });
        WrapperStream::Prefetched {
            rx,
            cancel,
            handle: Some(handle),
            finished: false,
            pending_terminal: None,
        }
    }
}

/// A stream of tuples from a wrapper fetch.
#[allow(clippy::large_enum_variant)] // Direct is the hot default; boxing would cost an indirection per pull
pub enum WrapperStream {
    /// Pull directly from the connection (each `next` may block on the
    /// network).
    Direct(SourceConnection),
    /// Pull from a prefetch buffer fed by a background thread.
    Prefetched {
        /// Buffered events.
        rx: Receiver<SourceEvent>,
        /// Cancels the producer thread.
        cancel: Arc<AtomicBool>,
        /// Producer thread handle (joined on drop).
        handle: Option<JoinHandle<()>>,
        /// Whether a terminal event was observed.
        finished: bool,
        /// A terminal event observed mid-batch, deferred so the preceding
        /// tuples could be delivered first.
        pending_terminal: Option<SourceEvent>,
    },
}

impl WrapperStream {
    /// Next event, blocking per the link model (direct) or until the
    /// prefetcher delivers (prefetched).
    pub fn next_event(&mut self) -> SourceEvent {
        match self {
            WrapperStream::Direct(conn) => conn.next_event(),
            WrapperStream::Prefetched {
                rx,
                finished,
                pending_terminal,
                ..
            } => {
                if let Some(ev) = pending_terminal.take() {
                    *finished = true;
                    return ev;
                }
                if *finished {
                    return SourceEvent::End;
                }
                match rx.recv() {
                    Ok(ev) => {
                        if !matches!(ev, SourceEvent::Tuple(_)) {
                            *finished = true;
                        }
                        ev
                    }
                    Err(_) => {
                        *finished = true;
                        SourceEvent::End
                    }
                }
            }
        }
    }

    /// Next event with a deadline: returns `None` if nothing arrived within
    /// `timeout` (the engine's `timeout(n)` detector, §3.1.2). Only
    /// meaningful for prefetched streams; a direct stream blocks in the
    /// link model and cannot observe a deadline, so callers needing
    /// timeouts must fetch with prefetching.
    pub fn next_event_timeout(&mut self, timeout: std::time::Duration) -> Option<SourceEvent> {
        match self {
            WrapperStream::Direct(_) => Some(self.next_event()),
            WrapperStream::Prefetched {
                rx,
                finished,
                pending_terminal,
                ..
            } => {
                if let Some(ev) = pending_terminal.take() {
                    *finished = true;
                    return Some(ev);
                }
                if *finished {
                    return Some(SourceEvent::End);
                }
                match rx.recv_timeout(timeout) {
                    Ok(ev) => {
                        if !matches!(ev, SourceEvent::Tuple(_)) {
                            *finished = true;
                        }
                        Some(ev)
                    }
                    Err(crossbeam_channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                        *finished = true;
                        Some(SourceEvent::End)
                    }
                }
            }
        }
    }

    /// Next arrival burst, blocking for the first tuple per the link model
    /// (direct) or until the prefetcher delivers (prefetched), then handing
    /// over — without further waiting — whatever else has already arrived,
    /// up to `max` tuples. This is the batched wrapper delivery path: the
    /// engine pays one handoff per burst instead of one per tuple, while a
    /// slow source still delivers its first tuple as early as ever.
    pub fn next_batch_event(&mut self, max: usize) -> SourceBatchEvent {
        match self {
            WrapperStream::Direct(conn) => conn.next_batch_event(max),
            WrapperStream::Prefetched { .. } => {
                let first = self.next_event();
                self.drain_buffered(first, max)
            }
        }
    }

    /// Like [`WrapperStream::next_batch_event`] but with a deadline on the
    /// *first* tuple: returns `None` if nothing arrived within `timeout`
    /// (the engine's `timeout(n)` detector). Buffered follow-up tuples are
    /// drained without waiting, exactly as in the untimed variant.
    pub fn next_batch_event_timeout(
        &mut self,
        max: usize,
        timeout: std::time::Duration,
    ) -> Option<SourceBatchEvent> {
        match self {
            WrapperStream::Direct(_) => Some(self.next_batch_event(max)),
            WrapperStream::Prefetched { .. } => {
                let first = self.next_event_timeout(timeout)?;
                Some(self.drain_buffered(first, max))
            }
        }
    }

    /// Turn a first event plus whatever the prefetch buffer already holds
    /// into one batch event. A terminal event seen after at least one tuple
    /// is stashed so it surfaces on the following pull.
    fn drain_buffered(&mut self, first: SourceEvent, max: usize) -> SourceBatchEvent {
        let first = match first {
            SourceEvent::Tuple(t) => t,
            other => return SourceBatchEvent::from_event(other),
        };
        let mut builder = BatchBuilder::new(max);
        if let Some(full) = builder.push(first) {
            return SourceBatchEvent::Batch(full);
        }
        if let WrapperStream::Prefetched {
            rx, pending_terminal, ..
        } = self
        {
            loop {
                match rx.try_recv() {
                    Ok(SourceEvent::Tuple(t)) => {
                        if let Some(full) = builder.push(t) {
                            return SourceBatchEvent::Batch(full);
                        }
                    }
                    Ok(terminal) => {
                        *pending_terminal = Some(terminal);
                        break;
                    }
                    Err(_) => break, // empty or disconnected: burst is over
                }
            }
        }
        match builder.finish() {
            Some(batch) => SourceBatchEvent::Batch(batch),
            None => SourceBatchEvent::End, // unreachable: `first` was pushed
        }
    }

    /// A cancel handle that aborts the stream from another thread.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        match self {
            WrapperStream::Direct(conn) => conn.cancel_handle(),
            WrapperStream::Prefetched { cancel, .. } => cancel.clone(),
        }
    }

    /// Drain remaining tuples (tests).
    pub fn drain(&mut self) -> Result<Vec<Tuple>, String> {
        let mut out = Vec::new();
        loop {
            match self.next_event() {
                SourceEvent::Tuple(t) => out.push(t),
                SourceEvent::End => return Ok(out),
                SourceEvent::Error(e) => return Err(e),
                SourceEvent::Cancelled => return Err("cancelled".into()),
            }
        }
    }
}

impl Drop for WrapperStream {
    fn drop(&mut self) {
        if let WrapperStream::Prefetched { cancel, handle, rx, .. } = self {
            cancel.store(true, Ordering::Relaxed);
            if let Some(h) = handle.take() {
                // The producer may be blocked sending into the bounded
                // buffer, and it can refill it between a single drain and
                // the join — so keep draining until the thread has actually
                // exited (the cancel flag makes its next pull return
                // `Cancelled`, ending the loop).
                while !h.is_finished() {
                    while rx.try_recv().is_ok() {}
                    std::thread::yield_now();
                }
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;
    use std::time::{Duration, Instant};
    use tukwila_common::{tuple, DataType, Relation, Schema};

    fn rel(n: i64) -> Relation {
        let schema = Schema::of("s", &[("a", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i]);
        }
        r
    }

    #[test]
    fn direct_fetch_streams_everything() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(50), LinkModel::instant()));
        let got = w.fetch().drain().unwrap();
        assert_eq!(got.len(), 50);
        assert_eq!(w.cardinality(), 50);
        assert_eq!(w.source_name(), "s");
    }

    #[test]
    fn prefetching_fetch_streams_everything() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(50), LinkModel::instant()));
        let got = w.fetch_prefetching(8).drain().unwrap();
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn prefetching_overlaps_waiting() {
        // Source delivers a tuple every 2ms; consumer takes 2ms per tuple.
        // Direct: ~4ms/tuple. Prefetched: ~2ms/tuple once warmed up.
        let link = LinkModel {
            per_tuple: Duration::from_millis(2),
            ..LinkModel::instant()
        };
        let n = 25;
        let w = Wrapper::new(SimulatedSource::new("s", rel(n), link));

        let consume = |mut s: WrapperStream| {
            let start = Instant::now();
            loop {
                match s.next_event() {
                    SourceEvent::Tuple(_) => std::thread::sleep(Duration::from_millis(2)),
                    SourceEvent::End => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            start.elapsed()
        };

        let direct = consume(w.fetch());
        let prefetched = consume(w.fetch_prefetching(64));
        assert!(
            prefetched < direct,
            "prefetching ({prefetched:?}) should beat direct ({direct:?})"
        );
    }

    #[test]
    fn error_propagates_through_prefetch() {
        let w = Wrapper::new(SimulatedSource::new("f", rel(10), LinkModel::failing(3)));
        let err = w.fetch_prefetching(4).drain().unwrap_err();
        assert!(err.contains("f"), "{err}");
    }

    #[test]
    fn dropping_prefetched_stream_stops_producer() {
        let link = LinkModel {
            per_tuple: Duration::from_millis(5),
            ..LinkModel::instant()
        };
        let w = Wrapper::new(SimulatedSource::new("s", rel(10_000), link));
        let start = Instant::now();
        {
            let mut s = w.fetch_prefetching(4);
            let _ = s.next_event();
            // drop without draining
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must not wait for the whole stream"
        );
    }

    #[test]
    fn prefetched_batches_drain_buffer_without_waiting() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(100), LinkModel::instant()));
        let mut s = w.fetch_prefetching(64);
        // Give the prefetcher a moment to fill its buffer.
        std::thread::sleep(Duration::from_millis(20));
        let mut total = 0;
        let mut batches = 0;
        loop {
            match s.next_batch_event(32) {
                SourceBatchEvent::Batch(b) => {
                    assert!(!b.is_empty());
                    assert!(b.len() <= 32);
                    total += b.len();
                    batches += 1;
                }
                SourceBatchEvent::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(total, 100);
        assert!(batches < 100, "buffered tuples must coalesce into bursts");
        // End stays sticky afterwards.
        assert_eq!(s.next_batch_event(32), SourceBatchEvent::End);
    }

    #[test]
    fn prefetched_batch_defers_error_until_tuples_delivered() {
        let w = Wrapper::new(SimulatedSource::new("f", rel(10), LinkModel::failing(3)));
        let mut s = w.fetch_prefetching(16);
        std::thread::sleep(Duration::from_millis(20));
        let mut got = 0;
        loop {
            match s.next_batch_event(16) {
                SourceBatchEvent::Batch(b) => got += b.len(),
                SourceBatchEvent::Error(e) => {
                    assert!(e.contains('f'), "{e}");
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, 3, "all pre-failure tuples delivered before the error");
    }

    #[test]
    fn timeout_batch_variant_observes_deadline() {
        let w = Wrapper::new(SimulatedSource::new(
            "stall",
            rel(10),
            LinkModel::stalling(2),
        ));
        let mut s = w.fetch_prefetching(4);
        let mut got = 0;
        loop {
            match s.next_batch_event_timeout(8, Duration::from_millis(30)) {
                Some(SourceBatchEvent::Batch(b)) => got += b.len(),
                None => break, // deadline hit while the source stalls
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, 2);
    }

    #[test]
    fn stream_end_is_sticky_for_prefetched() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(1), LinkModel::instant()));
        let mut s = w.fetch_prefetching(2);
        assert!(matches!(s.next_event(), SourceEvent::Tuple(_)));
        assert_eq!(s.next_event(), SourceEvent::End);
        assert_eq!(s.next_event(), SourceEvent::End);
    }
}
