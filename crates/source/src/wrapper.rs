//! The wrapper layer.
//!
//! Tukwila's execution engine "communicates with the data sources through a
//! set of wrapper programs" (§2) that accept *atomic fetch queries*
//! (footnote 2: relational operators are applied inside the engine, not at
//! the wrapper). Figure 2 shows the wrappers with buffering; §8 mentions
//! optimistic prefetching as the natural extension. [`Wrapper::fetch`]
//! returns a pull stream straight off the connection;
//! [`Wrapper::fetch_prefetching`] interposes a buffering thread that reads
//! ahead into a bounded queue — the configuration used by the prefetching
//! ablation (DESIGN.md §6).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{bounded, Receiver};

use tukwila_common::{BatchBuilder, Relation, Schema, Tuple, TupleBatch};

use crate::cache::{CacheLookup, FetchLease, SourceQueryKey, SourceResultCache};
use crate::source::{SimulatedSource, SourceBatchEvent, SourceConnection, SourceEvent};

/// How a cache-mediated fetch was served — the per-query attribution
/// companion to the cache's global hit/miss/coalesced counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchVia {
    /// Served from a completed cache entry without waiting.
    Hit,
    /// Served from a completed entry after waiting on another flight's
    /// in-progress fetch (single-flight coalescing).
    Coalesced,
    /// This caller became the fetching leader (a cache miss it will
    /// populate on clean end-of-stream).
    Lead,
    /// The cache declined to serve or lead (self-flight lease held).
    Bypass,
}

/// A wrapper bound to one data source.
#[derive(Clone)]
pub struct Wrapper {
    source: Arc<SimulatedSource>,
    conn_counter: Arc<std::sync::atomic::AtomicU64>,
}

impl std::fmt::Debug for Wrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wrapper")
            .field("source", &self.source.name())
            .finish()
    }
}

impl Wrapper {
    /// Wrap a source.
    pub fn new(source: SimulatedSource) -> Self {
        Wrapper {
            source: Arc::new(source),
            conn_counter: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Name of the wrapped source.
    pub fn source_name(&self) -> &str {
        self.source.name()
    }

    /// Schema of fetch results.
    pub fn schema(&self) -> &Schema {
        self.source.schema()
    }

    /// True cardinality of the source (the engine reports it to the
    /// optimizer after a full read; the catalog may only have an estimate).
    pub fn cardinality(&self) -> usize {
        self.source.cardinality()
    }

    /// Issue an atomic fetch query: stream the source's relation.
    pub fn fetch(&self) -> WrapperStream {
        let ordinal = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        WrapperStream::Direct(self.source.connect(ordinal))
    }

    /// Fetch through the shared source-result cache: a cached result
    /// replays from memory (no network), a cold key makes this caller the
    /// single-flight leader (its stream tees every tuple and installs the
    /// complete result on clean end-of-stream), and a fetch already in
    /// flight blocks until that leader completes — unless the leader is
    /// this caller's own `flight` (a self-join on one thread), in which
    /// case the fetch bypasses the cache to avoid self-deadlock. `base`
    /// builds the underlying stream when a real fetch is needed (so the
    /// caller keeps control of prefetching/timeout configuration);
    /// `cancel` aborts a coalesced wait. Returns `None` if cancelled
    /// while waiting.
    pub fn fetch_through_cache(
        &self,
        cache: &SourceResultCache,
        flight: u64,
        cancel: Option<&AtomicBool>,
        base: impl FnOnce(&Wrapper) -> WrapperStream,
    ) -> Option<WrapperStream> {
        self.fetch_through_cache_observed(cache, flight, cancel, base)
            .map(|(stream, _)| stream)
    }

    /// [`Wrapper::fetch_through_cache`] additionally reporting *how* the
    /// fetch was served, for per-query cache attribution.
    pub fn fetch_through_cache_observed(
        &self,
        cache: &SourceResultCache,
        flight: u64,
        cancel: Option<&AtomicBool>,
        base: impl FnOnce(&Wrapper) -> WrapperStream,
    ) -> Option<(WrapperStream, FetchVia)> {
        let key = SourceQueryKey::full_scan(self.source_name());
        let (lookup, waited) = cache.lookup_or_lead_observed(&key, flight, cancel);
        match lookup {
            CacheLookup::Hit(rel) => {
                let via = if waited {
                    FetchVia::Coalesced
                } else {
                    FetchVia::Hit
                };
                Some((WrapperStream::replay(rel), via))
            }
            CacheLookup::Lead(lease) => Some((
                WrapperStream::Tee {
                    inner: Box::new(base(self)),
                    schema: self.schema().clone(),
                    tee: TeeState::new(lease),
                },
                FetchVia::Lead,
            )),
            CacheLookup::Bypass => Some((base(self), FetchVia::Bypass)),
            CacheLookup::Cancelled => None,
        }
    }

    /// Fetch with a prefetching buffer thread of capacity `buffer` tuples.
    /// The thread keeps pulling from the source while the consumer is busy,
    /// overlapping network wait with computation.
    pub fn fetch_prefetching(&self, buffer: usize) -> WrapperStream {
        let ordinal = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        let mut conn = self.source.connect(ordinal);
        let cancel = conn.cancel_handle();
        let (tx, rx) = bounded::<SourceEvent>(buffer.max(1));
        let handle = std::thread::spawn(move || loop {
            let ev = conn.next_event();
            let done = !matches!(ev, SourceEvent::Tuple(_));
            if tx.send(ev).is_err() || done {
                return;
            }
        });
        WrapperStream::Prefetched {
            rx,
            cancel,
            handle: Some(handle),
            finished: false,
            pending_terminal: None,
        }
    }
}

/// A stream of tuples from a wrapper fetch.
#[allow(clippy::large_enum_variant)] // Direct is the hot default; boxing would cost an indirection per pull
pub enum WrapperStream {
    /// Pull directly from the connection (each `next` may block on the
    /// network).
    Direct(SourceConnection),
    /// Pull from a prefetch buffer fed by a background thread.
    Prefetched {
        /// Buffered events.
        rx: Receiver<SourceEvent>,
        /// Cancels the producer thread.
        cancel: Arc<AtomicBool>,
        /// Producer thread handle (joined on drop).
        handle: Option<JoinHandle<()>>,
        /// Whether a terminal event was observed.
        finished: bool,
        /// A terminal event observed mid-batch, deferred so the preceding
        /// tuples could be delivered first.
        pending_terminal: Option<SourceEvent>,
    },
    /// Replay a cached complete result from memory (cache hit).
    Replay {
        /// The cached relation.
        relation: Arc<Relation>,
        /// Next tuple to deliver.
        pos: usize,
        /// Cancels the replay (rule-driven deactivation).
        cancel: Arc<AtomicBool>,
    },
    /// Stream through the inner fetch while collecting every tuple; on a
    /// clean end-of-stream the complete result is installed in the cache
    /// via the lease (cache-miss leader). Errors, cancellation, or being
    /// dropped early abandon the lease so a waiter takes over — as does
    /// the collected copy outgrowing the cache budget (a result that can
    /// never be retained is not worth buffering).
    Tee {
        /// The real fetch.
        inner: Box<WrapperStream>,
        /// Schema of the fetched relation (for building the cached copy).
        schema: Schema,
        /// The teed state: buffered tuples plus the single-flight lease.
        tee: TeeState,
    },
}

/// Buffered-copy state of a cache-miss leader's stream.
pub struct TeeState {
    collected: Vec<Tuple>,
    collected_bytes: usize,
    /// `None` once fulfilled or abandoned.
    lease: Option<FetchLease>,
}

impl TeeState {
    fn new(lease: FetchLease) -> Self {
        TeeState {
            collected: Vec::new(),
            collected_bytes: 0,
            lease: Some(lease),
        }
    }

    /// Fulfil the lease with the collected tuples (clean end-of-stream); a
    /// second call is a no-op because the lease is taken.
    fn finish(&mut self, schema: &Schema) {
        if let Some(lease) = self.lease.take() {
            match Relation::new(schema.clone(), std::mem::take(&mut self.collected)) {
                Ok(rel) => lease.fulfill(Arc::new(rel)),
                Err(_) => drop(lease), // schema mismatch: abandon, don't poison
            }
        }
    }

    /// Stop leading and free the buffered copy (error, cancellation, or a
    /// result too large for the cache).
    fn abandon(&mut self) {
        self.lease.take(); // dropped → abandoned, waiters promoted
        self.collected = Vec::new();
        self.collected_bytes = 0;
    }

    fn collect(&mut self, t: &Tuple) {
        if self.lease.is_none() {
            return; // already abandoned: stream through without buffering
        }
        self.collected_bytes += t.mem_size();
        self.collected.push(t.clone());
        // A result bigger than the whole cache budget would be evicted the
        // moment it was inserted — abandon instead of buffering it all.
        if self
            .lease
            .as_ref()
            .is_some_and(|l| self.collected_bytes > l.budget_bytes())
        {
            self.abandon();
        }
    }

    /// Record one observed event: collect tuples, fulfil on end, abandon
    /// on error/cancel.
    fn observe(&mut self, ev: &SourceEvent, schema: &Schema) {
        match ev {
            SourceEvent::Tuple(t) => self.collect(t),
            SourceEvent::End => self.finish(schema),
            SourceEvent::Error(_) | SourceEvent::Cancelled => self.abandon(),
        }
    }

    /// Batch-level variant of [`TeeState::observe`].
    fn observe_batch(&mut self, ev: &SourceBatchEvent, schema: &Schema) {
        match ev {
            SourceBatchEvent::Batch(b) => {
                for t in b.iter() {
                    self.collect(t);
                }
            }
            SourceBatchEvent::End => self.finish(schema),
            SourceBatchEvent::Error(_) | SourceBatchEvent::Cancelled => self.abandon(),
        }
    }
}

impl WrapperStream {
    /// A stream that replays a complete cached relation from memory.
    pub fn replay(relation: Arc<Relation>) -> WrapperStream {
        WrapperStream::Replay {
            relation,
            pos: 0,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Next event, blocking per the link model (direct) or until the
    /// prefetcher delivers (prefetched).
    pub fn next_event(&mut self) -> SourceEvent {
        match self {
            WrapperStream::Direct(conn) => conn.next_event(),
            WrapperStream::Replay {
                relation,
                pos,
                cancel,
            } => {
                if cancel.load(Ordering::Relaxed) {
                    return SourceEvent::Cancelled;
                }
                match relation.tuples().get(*pos) {
                    Some(t) => {
                        *pos += 1;
                        SourceEvent::Tuple(t.clone())
                    }
                    None => SourceEvent::End,
                }
            }
            WrapperStream::Tee { inner, schema, tee } => {
                let ev = inner.next_event();
                tee.observe(&ev, schema);
                ev
            }
            WrapperStream::Prefetched {
                rx,
                finished,
                pending_terminal,
                ..
            } => {
                if let Some(ev) = pending_terminal.take() {
                    *finished = true;
                    return ev;
                }
                if *finished {
                    return SourceEvent::End;
                }
                match rx.recv() {
                    Ok(ev) => {
                        if !matches!(ev, SourceEvent::Tuple(_)) {
                            *finished = true;
                        }
                        ev
                    }
                    Err(_) => {
                        *finished = true;
                        SourceEvent::End
                    }
                }
            }
        }
    }

    /// Next event with a deadline: returns `None` if nothing arrived within
    /// `timeout` (the engine's `timeout(n)` detector, §3.1.2). Only
    /// meaningful for prefetched streams; a direct stream blocks in the
    /// link model and cannot observe a deadline, so callers needing
    /// timeouts must fetch with prefetching.
    pub fn next_event_timeout(&mut self, timeout: std::time::Duration) -> Option<SourceEvent> {
        match self {
            WrapperStream::Direct(_) | WrapperStream::Replay { .. } => Some(self.next_event()),
            WrapperStream::Tee { inner, schema, tee } => {
                let ev = inner.next_event_timeout(timeout)?;
                tee.observe(&ev, schema);
                Some(ev)
            }
            WrapperStream::Prefetched {
                rx,
                finished,
                pending_terminal,
                ..
            } => {
                if let Some(ev) = pending_terminal.take() {
                    *finished = true;
                    return Some(ev);
                }
                if *finished {
                    return Some(SourceEvent::End);
                }
                match rx.recv_timeout(timeout) {
                    Ok(ev) => {
                        if !matches!(ev, SourceEvent::Tuple(_)) {
                            *finished = true;
                        }
                        Some(ev)
                    }
                    Err(crossbeam_channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                        *finished = true;
                        Some(SourceEvent::End)
                    }
                }
            }
        }
    }

    /// Next arrival burst, blocking for the first tuple per the link model
    /// (direct) or until the prefetcher delivers (prefetched), then handing
    /// over — without further waiting — whatever else has already arrived,
    /// up to `max` tuples. This is the batched wrapper delivery path: the
    /// engine pays one handoff per burst instead of one per tuple, while a
    /// slow source still delivers its first tuple as early as ever.
    pub fn next_batch_event(&mut self, max: usize) -> SourceBatchEvent {
        match self {
            WrapperStream::Direct(conn) => conn.next_batch_event(max),
            WrapperStream::Replay {
                relation,
                pos,
                cancel,
            } => {
                if cancel.load(Ordering::Relaxed) {
                    return SourceBatchEvent::Cancelled;
                }
                if *pos >= relation.len() {
                    return SourceBatchEvent::End;
                }
                let end = (*pos + max.max(1)).min(relation.len());
                // Serve the cached result as a columnar slice when the
                // relation has one (fragment results assembled column-wise
                // do); otherwise clone the row span.
                let batch = match relation.columnar_cached() {
                    Some(cols) => TupleBatch::from_columns(cols.slice(*pos, end)),
                    None => TupleBatch::from_tuples(relation.tuples()[*pos..end].to_vec()),
                };
                *pos = end;
                SourceBatchEvent::Batch(batch)
            }
            WrapperStream::Tee { inner, schema, tee } => {
                let ev = inner.next_batch_event(max);
                tee.observe_batch(&ev, schema);
                ev
            }
            WrapperStream::Prefetched { .. } => {
                let first = self.next_event();
                self.drain_buffered(first, max)
            }
        }
    }

    /// Like [`WrapperStream::next_batch_event`] but with a deadline on the
    /// *first* tuple: returns `None` if nothing arrived within `timeout`
    /// (the engine's `timeout(n)` detector). Buffered follow-up tuples are
    /// drained without waiting, exactly as in the untimed variant.
    pub fn next_batch_event_timeout(
        &mut self,
        max: usize,
        timeout: std::time::Duration,
    ) -> Option<SourceBatchEvent> {
        match self {
            WrapperStream::Direct(_) | WrapperStream::Replay { .. } => {
                Some(self.next_batch_event(max))
            }
            WrapperStream::Tee { inner, schema, tee } => {
                let ev = inner.next_batch_event_timeout(max, timeout)?;
                tee.observe_batch(&ev, schema);
                Some(ev)
            }
            WrapperStream::Prefetched { .. } => {
                let first = self.next_event_timeout(timeout)?;
                Some(self.drain_buffered(first, max))
            }
        }
    }

    /// Turn a first event plus whatever the prefetch buffer already holds
    /// into one batch event. A terminal event seen after at least one tuple
    /// is stashed so it surfaces on the following pull.
    fn drain_buffered(&mut self, first: SourceEvent, max: usize) -> SourceBatchEvent {
        let first = match first {
            SourceEvent::Tuple(t) => t,
            other => return SourceBatchEvent::from_event(other),
        };
        let mut builder = BatchBuilder::new(max);
        if let Some(full) = builder.push(first) {
            return SourceBatchEvent::Batch(full);
        }
        if let WrapperStream::Prefetched {
            rx,
            pending_terminal,
            ..
        } = self
        {
            loop {
                match rx.try_recv() {
                    Ok(SourceEvent::Tuple(t)) => {
                        if let Some(full) = builder.push(t) {
                            return SourceBatchEvent::Batch(full);
                        }
                    }
                    Ok(terminal) => {
                        *pending_terminal = Some(terminal);
                        break;
                    }
                    Err(_) => break, // empty or disconnected: burst is over
                }
            }
        }
        match builder.finish() {
            Some(batch) => SourceBatchEvent::Batch(batch),
            None => SourceBatchEvent::End, // unreachable: `first` was pushed
        }
    }

    /// A cancel handle that aborts the stream from another thread.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        match self {
            WrapperStream::Direct(conn) => conn.cancel_handle(),
            WrapperStream::Prefetched { cancel, .. } => cancel.clone(),
            WrapperStream::Replay { cancel, .. } => cancel.clone(),
            WrapperStream::Tee { inner, .. } => inner.cancel_handle(),
        }
    }

    /// Drain remaining tuples (tests).
    pub fn drain(&mut self) -> Result<Vec<Tuple>, String> {
        let mut out = Vec::new();
        loop {
            match self.next_event() {
                SourceEvent::Tuple(t) => out.push(t),
                SourceEvent::End => return Ok(out),
                SourceEvent::Error(e) => return Err(e),
                SourceEvent::Cancelled => return Err("cancelled".into()),
            }
        }
    }
}

impl Drop for WrapperStream {
    fn drop(&mut self) {
        if let WrapperStream::Prefetched {
            cancel, handle, rx, ..
        } = self
        {
            cancel.store(true, Ordering::Relaxed);
            if let Some(h) = handle.take() {
                // The producer may be blocked sending into the bounded
                // buffer, and it can refill it between a single drain and
                // the join — so keep draining until the thread has actually
                // exited (the cancel flag makes its next pull return
                // `Cancelled`, ending the loop).
                while !h.is_finished() {
                    while rx.try_recv().is_ok() {}
                    std::thread::yield_now();
                }
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;
    use std::time::{Duration, Instant};
    use tukwila_common::{tuple, DataType, Relation, Schema};

    fn rel(n: i64) -> Relation {
        let schema = Schema::of("s", &[("a", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i]);
        }
        r
    }

    #[test]
    fn direct_fetch_streams_everything() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(50), LinkModel::instant()));
        let got = w.fetch().drain().unwrap();
        assert_eq!(got.len(), 50);
        assert_eq!(w.cardinality(), 50);
        assert_eq!(w.source_name(), "s");
    }

    #[test]
    fn prefetching_fetch_streams_everything() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(50), LinkModel::instant()));
        let got = w.fetch_prefetching(8).drain().unwrap();
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn prefetching_overlaps_waiting() {
        // Source delivers a tuple every 2ms; consumer takes 2ms per tuple.
        // Direct: ~4ms/tuple. Prefetched: ~2ms/tuple once warmed up.
        let link = LinkModel {
            per_tuple: Duration::from_millis(2),
            ..LinkModel::instant()
        };
        let n = 25;
        let w = Wrapper::new(SimulatedSource::new("s", rel(n), link));

        let consume = |mut s: WrapperStream| {
            let start = Instant::now();
            loop {
                match s.next_event() {
                    SourceEvent::Tuple(_) => std::thread::sleep(Duration::from_millis(2)),
                    SourceEvent::End => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            start.elapsed()
        };

        let direct = consume(w.fetch());
        let prefetched = consume(w.fetch_prefetching(64));
        assert!(
            prefetched < direct,
            "prefetching ({prefetched:?}) should beat direct ({direct:?})"
        );
    }

    #[test]
    fn error_propagates_through_prefetch() {
        let w = Wrapper::new(SimulatedSource::new("f", rel(10), LinkModel::failing(3)));
        let err = w.fetch_prefetching(4).drain().unwrap_err();
        assert!(err.contains("f"), "{err}");
    }

    #[test]
    fn dropping_prefetched_stream_stops_producer() {
        let link = LinkModel {
            per_tuple: Duration::from_millis(5),
            ..LinkModel::instant()
        };
        let w = Wrapper::new(SimulatedSource::new("s", rel(10_000), link));
        let start = Instant::now();
        {
            let mut s = w.fetch_prefetching(4);
            let _ = s.next_event();
            // drop without draining
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must not wait for the whole stream"
        );
    }

    #[test]
    fn prefetched_batches_drain_buffer_without_waiting() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(100), LinkModel::instant()));
        let mut s = w.fetch_prefetching(64);
        // Give the prefetcher a moment to fill its buffer.
        std::thread::sleep(Duration::from_millis(20));
        let mut total = 0;
        let mut batches = 0;
        loop {
            match s.next_batch_event(32) {
                SourceBatchEvent::Batch(b) => {
                    assert!(!b.is_empty());
                    assert!(b.len() <= 32);
                    total += b.len();
                    batches += 1;
                }
                SourceBatchEvent::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(total, 100);
        assert!(batches < 100, "buffered tuples must coalesce into bursts");
        // End stays sticky afterwards.
        assert_eq!(s.next_batch_event(32), SourceBatchEvent::End);
    }

    #[test]
    fn prefetched_batch_defers_error_until_tuples_delivered() {
        let w = Wrapper::new(SimulatedSource::new("f", rel(10), LinkModel::failing(3)));
        let mut s = w.fetch_prefetching(16);
        std::thread::sleep(Duration::from_millis(20));
        let mut got = 0;
        loop {
            match s.next_batch_event(16) {
                SourceBatchEvent::Batch(b) => got += b.len(),
                SourceBatchEvent::Error(e) => {
                    assert!(e.contains('f'), "{e}");
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, 3, "all pre-failure tuples delivered before the error");
    }

    #[test]
    fn timeout_batch_variant_observes_deadline() {
        let w = Wrapper::new(SimulatedSource::new(
            "stall",
            rel(10),
            LinkModel::stalling(2),
        ));
        let mut s = w.fetch_prefetching(4);
        let mut got = 0;
        loop {
            match s.next_batch_event_timeout(8, Duration::from_millis(30)) {
                Some(SourceBatchEvent::Batch(b)) => got += b.len(),
                None => break, // deadline hit while the source stalls
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got, 2);
    }

    #[test]
    fn cached_fetch_tees_then_replays() {
        use crate::cache::SourceResultCache;
        let link = LinkModel {
            per_tuple: Duration::from_micros(300),
            ..LinkModel::instant()
        };
        let w = Wrapper::new(SimulatedSource::new("s", rel(30), link));
        let cache = SourceResultCache::new(1 << 20);
        // Cold: this fetch leads and tees into the cache.
        let got = w
            .fetch_through_cache(&cache, 1, None, |w| w.fetch())
            .unwrap()
            .drain()
            .unwrap();
        assert_eq!(got.len(), 30);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().entries, 1);
        // Warm: replays from memory — the base fetch must not be built.
        let start = Instant::now();
        let replayed = w
            .fetch_through_cache(&cache, 1, None, |_| {
                panic!("warm fetch must not hit the source")
            })
            .unwrap()
            .drain()
            .unwrap();
        assert_eq!(replayed, got);
        assert!(
            start.elapsed() < Duration::from_millis(5),
            "replay is instant"
        );
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cached_replay_delivers_batches() {
        use crate::cache::SourceResultCache;
        let w = Wrapper::new(SimulatedSource::new("s", rel(100), LinkModel::instant()));
        let cache = SourceResultCache::new(1 << 20);
        w.fetch_through_cache(&cache, 1, None, |w| w.fetch())
            .unwrap()
            .drain()
            .unwrap();
        let mut s = w
            .fetch_through_cache(&cache, 1, None, |_| unreachable!())
            .unwrap();
        let mut total = 0;
        loop {
            match s.next_batch_event(32) {
                SourceBatchEvent::Batch(b) => {
                    assert!(b.len() <= 32);
                    total += b.len();
                }
                SourceBatchEvent::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(total, 100);
        assert_eq!(s.next_batch_event(32), SourceBatchEvent::End);
    }

    #[test]
    fn failed_tee_caches_nothing() {
        use crate::cache::SourceResultCache;
        let w = Wrapper::new(SimulatedSource::new("f", rel(10), LinkModel::failing(3)));
        let cache = SourceResultCache::new(1 << 20);
        let err = w
            .fetch_through_cache(&cache, 1, None, |w| w.fetch())
            .unwrap()
            .drain()
            .unwrap_err();
        assert!(err.contains('f'), "{err}");
        assert_eq!(cache.stats().entries, 0, "partial streams are not cached");
        // The abandoned lease lets the next fetch lead again.
        assert_eq!(cache.stats().misses, 1);
        let err2 = w
            .fetch_through_cache(&cache, 1, None, |w| w.fetch())
            .unwrap()
            .drain()
            .unwrap_err();
        assert!(err2.contains('f'));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn tee_abandons_results_larger_than_the_cache_budget() {
        use crate::cache::SourceResultCache;
        let w = Wrapper::new(SimulatedSource::new("big", rel(200), LinkModel::instant()));
        let budget = rel(200).mem_size() / 4; // result can never fit
        let cache = SourceResultCache::new(budget);
        let got = w
            .fetch_through_cache(&cache, 1, None, |w| w.fetch())
            .unwrap()
            .drain()
            .unwrap();
        assert_eq!(got.len(), 200, "the stream itself is unaffected");
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(
            s.evictions, 0,
            "abandoned mid-stream, never buffered in full or inserted"
        );
        // The abandoned lease lets the next fetch lead (and abandon) again.
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn dropped_tee_mid_stream_abandons_lease() {
        use crate::cache::SourceResultCache;
        let w = Wrapper::new(SimulatedSource::new("s", rel(50), LinkModel::instant()));
        let cache = SourceResultCache::new(1 << 20);
        {
            let mut s = w
                .fetch_through_cache(&cache, 1, None, |w| w.fetch())
                .unwrap();
            let _ = s.next_event(); // partial read, then drop
        }
        assert_eq!(cache.stats().entries, 0);
        // Next fetch becomes the new leader and completes the entry.
        w.fetch_through_cache(&cache, 1, None, |w| w.fetch())
            .unwrap()
            .drain()
            .unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn stream_end_is_sticky_for_prefetched() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(1), LinkModel::instant()));
        let mut s = w.fetch_prefetching(2);
        assert!(matches!(s.next_event(), SourceEvent::Tuple(_)));
        assert_eq!(s.next_event(), SourceEvent::End);
        assert_eq!(s.next_event(), SourceEvent::End);
    }
}
