//! The wrapper layer.
//!
//! Tukwila's execution engine "communicates with the data sources through a
//! set of wrapper programs" (§2) that accept *atomic fetch queries*
//! (footnote 2: relational operators are applied inside the engine, not at
//! the wrapper). Figure 2 shows the wrappers with buffering; §8 mentions
//! optimistic prefetching as the natural extension. [`Wrapper::fetch`]
//! returns a pull stream straight off the connection;
//! [`Wrapper::fetch_prefetching`] interposes a buffering thread that reads
//! ahead into a bounded queue — the configuration used by the prefetching
//! ablation (DESIGN.md §5).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{bounded, Receiver};

use tukwila_common::{Schema, Tuple};

use crate::source::{SimulatedSource, SourceConnection, SourceEvent};

/// A wrapper bound to one data source.
#[derive(Clone)]
pub struct Wrapper {
    source: Arc<SimulatedSource>,
    conn_counter: Arc<std::sync::atomic::AtomicU64>,
}

impl std::fmt::Debug for Wrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wrapper")
            .field("source", &self.source.name())
            .finish()
    }
}

impl Wrapper {
    /// Wrap a source.
    pub fn new(source: SimulatedSource) -> Self {
        Wrapper {
            source: Arc::new(source),
            conn_counter: Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Name of the wrapped source.
    pub fn source_name(&self) -> &str {
        self.source.name()
    }

    /// Schema of fetch results.
    pub fn schema(&self) -> &Schema {
        self.source.schema()
    }

    /// True cardinality of the source (the engine reports it to the
    /// optimizer after a full read; the catalog may only have an estimate).
    pub fn cardinality(&self) -> usize {
        self.source.cardinality()
    }

    /// Issue an atomic fetch query: stream the source's relation.
    pub fn fetch(&self) -> WrapperStream {
        let ordinal = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        WrapperStream::Direct(self.source.connect(ordinal))
    }

    /// Fetch with a prefetching buffer thread of capacity `buffer` tuples.
    /// The thread keeps pulling from the source while the consumer is busy,
    /// overlapping network wait with computation.
    pub fn fetch_prefetching(&self, buffer: usize) -> WrapperStream {
        let ordinal = self.conn_counter.fetch_add(1, Ordering::Relaxed);
        let mut conn = self.source.connect(ordinal);
        let cancel = conn.cancel_handle();
        let (tx, rx) = bounded::<SourceEvent>(buffer.max(1));
        let handle = std::thread::spawn(move || loop {
            let ev = conn.next_event();
            let done = !matches!(ev, SourceEvent::Tuple(_));
            if tx.send(ev).is_err() || done {
                return;
            }
        });
        WrapperStream::Prefetched {
            rx,
            cancel,
            handle: Some(handle),
            finished: false,
        }
    }
}

/// A stream of tuples from a wrapper fetch.
#[allow(clippy::large_enum_variant)] // Direct is the hot default; boxing would cost an indirection per pull
pub enum WrapperStream {
    /// Pull directly from the connection (each `next` may block on the
    /// network).
    Direct(SourceConnection),
    /// Pull from a prefetch buffer fed by a background thread.
    Prefetched {
        /// Buffered events.
        rx: Receiver<SourceEvent>,
        /// Cancels the producer thread.
        cancel: Arc<AtomicBool>,
        /// Producer thread handle (joined on drop).
        handle: Option<JoinHandle<()>>,
        /// Whether a terminal event was observed.
        finished: bool,
    },
}

impl WrapperStream {
    /// Next event, blocking per the link model (direct) or until the
    /// prefetcher delivers (prefetched).
    pub fn next_event(&mut self) -> SourceEvent {
        match self {
            WrapperStream::Direct(conn) => conn.next_event(),
            WrapperStream::Prefetched { rx, finished, .. } => {
                if *finished {
                    return SourceEvent::End;
                }
                match rx.recv() {
                    Ok(ev) => {
                        if !matches!(ev, SourceEvent::Tuple(_)) {
                            *finished = true;
                        }
                        ev
                    }
                    Err(_) => {
                        *finished = true;
                        SourceEvent::End
                    }
                }
            }
        }
    }

    /// Next event with a deadline: returns `None` if nothing arrived within
    /// `timeout` (the engine's `timeout(n)` detector, §3.1.2). Only
    /// meaningful for prefetched streams; a direct stream blocks in the
    /// link model and cannot observe a deadline, so callers needing
    /// timeouts must fetch with prefetching.
    pub fn next_event_timeout(&mut self, timeout: std::time::Duration) -> Option<SourceEvent> {
        match self {
            WrapperStream::Direct(_) => Some(self.next_event()),
            WrapperStream::Prefetched { rx, finished, .. } => {
                if *finished {
                    return Some(SourceEvent::End);
                }
                match rx.recv_timeout(timeout) {
                    Ok(ev) => {
                        if !matches!(ev, SourceEvent::Tuple(_)) {
                            *finished = true;
                        }
                        Some(ev)
                    }
                    Err(crossbeam_channel::RecvTimeoutError::Timeout) => None,
                    Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                        *finished = true;
                        Some(SourceEvent::End)
                    }
                }
            }
        }
    }

    /// A cancel handle that aborts the stream from another thread.
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        match self {
            WrapperStream::Direct(conn) => conn.cancel_handle(),
            WrapperStream::Prefetched { cancel, .. } => cancel.clone(),
        }
    }

    /// Drain remaining tuples (tests).
    pub fn drain(&mut self) -> Result<Vec<Tuple>, String> {
        let mut out = Vec::new();
        loop {
            match self.next_event() {
                SourceEvent::Tuple(t) => out.push(t),
                SourceEvent::End => return Ok(out),
                SourceEvent::Error(e) => return Err(e),
                SourceEvent::Cancelled => return Err("cancelled".into()),
            }
        }
    }
}

impl Drop for WrapperStream {
    fn drop(&mut self) {
        if let WrapperStream::Prefetched { cancel, handle, rx, .. } = self {
            cancel.store(true, Ordering::Relaxed);
            if let Some(h) = handle.take() {
                // The producer may be blocked sending into the bounded
                // buffer, and it can refill it between a single drain and
                // the join — so keep draining until the thread has actually
                // exited (the cancel flag makes its next pull return
                // `Cancelled`, ending the loop).
                while !h.is_finished() {
                    while rx.try_recv().is_ok() {}
                    std::thread::yield_now();
                }
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;
    use std::time::{Duration, Instant};
    use tukwila_common::{tuple, DataType, Relation, Schema};

    fn rel(n: i64) -> Relation {
        let schema = Schema::of("s", &[("a", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i]);
        }
        r
    }

    #[test]
    fn direct_fetch_streams_everything() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(50), LinkModel::instant()));
        let got = w.fetch().drain().unwrap();
        assert_eq!(got.len(), 50);
        assert_eq!(w.cardinality(), 50);
        assert_eq!(w.source_name(), "s");
    }

    #[test]
    fn prefetching_fetch_streams_everything() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(50), LinkModel::instant()));
        let got = w.fetch_prefetching(8).drain().unwrap();
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn prefetching_overlaps_waiting() {
        // Source delivers a tuple every 2ms; consumer takes 2ms per tuple.
        // Direct: ~4ms/tuple. Prefetched: ~2ms/tuple once warmed up.
        let link = LinkModel {
            per_tuple: Duration::from_millis(2),
            ..LinkModel::instant()
        };
        let n = 25;
        let w = Wrapper::new(SimulatedSource::new("s", rel(n), link));

        let consume = |mut s: WrapperStream| {
            let start = Instant::now();
            loop {
                match s.next_event() {
                    SourceEvent::Tuple(_) => std::thread::sleep(Duration::from_millis(2)),
                    SourceEvent::End => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            start.elapsed()
        };

        let direct = consume(w.fetch());
        let prefetched = consume(w.fetch_prefetching(64));
        assert!(
            prefetched < direct,
            "prefetching ({prefetched:?}) should beat direct ({direct:?})"
        );
    }

    #[test]
    fn error_propagates_through_prefetch() {
        let w = Wrapper::new(SimulatedSource::new("f", rel(10), LinkModel::failing(3)));
        let err = w.fetch_prefetching(4).drain().unwrap_err();
        assert!(err.contains("f"), "{err}");
    }

    #[test]
    fn dropping_prefetched_stream_stops_producer() {
        let link = LinkModel {
            per_tuple: Duration::from_millis(5),
            ..LinkModel::instant()
        };
        let w = Wrapper::new(SimulatedSource::new("s", rel(10_000), link));
        let start = Instant::now();
        {
            let mut s = w.fetch_prefetching(4);
            let _ = s.next_event();
            // drop without draining
        }
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must not wait for the whole stream"
        );
    }

    #[test]
    fn stream_end_is_sticky_for_prefetched() {
        let w = Wrapper::new(SimulatedSource::new("s", rel(1), LinkModel::instant()));
        let mut s = w.fetch_prefetching(2);
        assert!(matches!(s.next_event(), SourceEvent::Tuple(_)));
        assert_eq!(s.next_event(), SourceEvent::End);
        assert_eq!(s.next_event(), SourceEvent::End);
    }
}
