//! Registry of live data sources.
//!
//! The execution engine's wrapper-scan operators look sources up by name;
//! experiment setups register simulated sources (with their link models)
//! here. Mirrors are simply two registered sources serving the same
//! relation under different names with different link models.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use tukwila_common::{Result, TukwilaError};

use crate::cache::SourceResultCache;
use crate::source::SimulatedSource;
use crate::wrapper::Wrapper;

/// Thread-safe name → wrapper registry (cheap to clone; clones share state).
///
/// The registry is also where the engine finds the optional shared
/// [`SourceResultCache`]: installing one makes every wrapper scan over
/// these sources fetch through it.
#[derive(Clone, Default)]
pub struct SourceRegistry {
    sources: Arc<RwLock<HashMap<String, Wrapper>>>,
    cache: Arc<RwLock<Option<SourceResultCache>>>,
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source, replacing any existing one of the same name.
    pub fn register(&self, source: SimulatedSource) -> Wrapper {
        let w = Wrapper::new(source);
        self.sources
            .write()
            .insert(w.source_name().to_string(), w.clone());
        w
    }

    /// Look up a wrapper by source name.
    pub fn wrapper(&self, name: &str) -> Result<Wrapper> {
        self.sources
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| TukwilaError::SourceUnavailable {
                source: name.to_string(),
                reason: "not registered".to_string(),
            })
    }

    /// Whether a source is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.sources.read().contains_key(name)
    }

    /// Registered source names (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.sources.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Install a shared source-result cache; subsequent wrapper scans
    /// fetch through it. All registry clones see the cache.
    pub fn set_cache(&self, cache: SourceResultCache) {
        *self.cache.write() = Some(cache);
    }

    /// Remove the cache (scans go back to fetching every time).
    pub fn clear_cache(&self) {
        *self.cache.write() = None;
    }

    /// Remove the cache only if it is `cache` itself — owners (e.g. a
    /// dropping `QueryService`) use this so they cannot clobber a cache a
    /// different owner installed on this shared registry afterwards.
    pub fn uninstall_cache(&self, cache: &SourceResultCache) {
        let mut slot = self.cache.write();
        if slot.as_ref().is_some_and(|c| c.same_instance(cache)) {
            *slot = None;
        }
    }

    /// The installed cache, if any.
    pub fn cache(&self) -> Option<SourceResultCache> {
        self.cache.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;
    use tukwila_common::{tuple, DataType, Relation, Schema};

    fn rel() -> Relation {
        let schema = Schema::of("s", &[("a", DataType::Int)]);
        let mut r = Relation::empty(schema);
        r.push(tuple![1]);
        r
    }

    #[test]
    fn register_and_fetch() {
        let reg = SourceRegistry::new();
        reg.register(SimulatedSource::new("bib1", rel(), LinkModel::instant()));
        let w = reg.wrapper("bib1").unwrap();
        assert_eq!(w.fetch().drain().unwrap().len(), 1);
        assert!(reg.contains("bib1"));
        assert_eq!(reg.names(), vec!["bib1".to_string()]);
    }

    #[test]
    fn missing_source_is_unavailable_error() {
        let reg = SourceRegistry::new();
        let err = reg.wrapper("ghost").unwrap_err();
        assert_eq!(err.kind(), "source_unavailable");
    }

    #[test]
    fn clones_share_registrations() {
        let a = SourceRegistry::new();
        let b = a.clone();
        a.register(SimulatedSource::new("s", rel(), LinkModel::instant()));
        assert!(b.contains("s"));
    }
}
