//! Registry of live data sources.
//!
//! The execution engine's wrapper-scan operators look sources up by name;
//! experiment setups register simulated sources (with their link models)
//! here. Mirrors are simply two registered sources serving the same
//! relation under different names with different link models.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use tukwila_common::{Result, TukwilaError};

use crate::source::SimulatedSource;
use crate::wrapper::Wrapper;

/// Thread-safe name → wrapper registry (cheap to clone; clones share state).
#[derive(Clone, Default)]
pub struct SourceRegistry {
    sources: Arc<RwLock<HashMap<String, Wrapper>>>,
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a source, replacing any existing one of the same name.
    pub fn register(&self, source: SimulatedSource) -> Wrapper {
        let w = Wrapper::new(source);
        self.sources
            .write()
            .insert(w.source_name().to_string(), w.clone());
        w
    }

    /// Look up a wrapper by source name.
    pub fn wrapper(&self, name: &str) -> Result<Wrapper> {
        self.sources.read().get(name).cloned().ok_or_else(|| {
            TukwilaError::SourceUnavailable {
                source: name.to_string(),
                reason: "not registered".to_string(),
            }
        })
    }

    /// Whether a source is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.sources.read().contains_key(name)
    }

    /// Registered source names (sorted).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.sources.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkModel;
    use tukwila_common::{tuple, DataType, Relation, Schema};

    fn rel() -> Relation {
        let schema = Schema::of("s", &[("a", DataType::Int)]);
        let mut r = Relation::empty(schema);
        r.push(tuple![1]);
        r
    }

    #[test]
    fn register_and_fetch() {
        let reg = SourceRegistry::new();
        reg.register(SimulatedSource::new("bib1", rel(), LinkModel::instant()));
        let w = reg.wrapper("bib1").unwrap();
        assert_eq!(w.fetch().drain().unwrap().len(), 1);
        assert!(reg.contains("bib1"));
        assert_eq!(reg.names(), vec!["bib1".to_string()]);
    }

    #[test]
    fn missing_source_is_unavailable_error() {
        let reg = SourceRegistry::new();
        let err = reg.wrapper("ghost").unwrap_err();
        assert_eq!(err.kind(), "source_unavailable");
    }

    #[test]
    fn clones_share_registrations() {
        let a = SourceRegistry::new();
        let b = a.clone();
        a.register(SimulatedSource::new("s", rel(), LinkModel::instant()));
        assert!(b.contains("s"));
    }
}
