//! Shared source-result cache.
//!
//! For a data-integration engine whose dominant cost is slow autonomous
//! sources, the highest-leverage cross-query optimization is fetching each
//! (source, pushed-down source query) result **once** and sharing it among
//! concurrent queries. The cache is:
//!
//! * **keyed** by [`SourceQueryKey`] — today's wrappers accept only atomic
//!   fetch queries (footnote 2 of the paper), so the key's `query`
//!   component is the full scan `"*"`, but the key shape is ready for
//!   predicate pushdown;
//! * **single-flight** — the first query to miss a key becomes the
//!   *leader* and streams through a teeing wrapper stream; racing queries
//!   wait and are served from the completed result (one wrapper fetch
//!   total). A leader that fails or is cancelled mid-stream abandons its
//!   lease and a waiter is promoted to leader;
//! * **memory-bounded** — insertions charge a budget (a plain byte cap, or
//!   a [`MemoryReservation`] handed out by the service's memory governor so
//!   fleet-level memory pressure also shrinks the cache) and evict least
//!   recently used entries until back under;
//! * **observable** — hit/miss/eviction/coalesced-wait counters via
//!   [`SourceResultCache::stats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use tukwila_common::Relation;
use tukwila_storage::MemoryReservation;

/// Cache key: a source plus the query pushed down to it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceQueryKey {
    /// Source name as registered in the [`crate::SourceRegistry`].
    pub source: String,
    /// Pushed-down source query; `"*"` is the atomic full scan.
    pub query: String,
}

impl SourceQueryKey {
    /// The full-scan key for `source` (the only fetch today's wrappers
    /// accept).
    pub fn full_scan(source: impl Into<String>) -> Self {
        SourceQueryKey {
            source: source.into(),
            query: "*".to_string(),
        }
    }
}

/// Counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a completed entry (including coalesced waiters
    /// served by another query's fetch).
    pub hits: u64,
    /// Lookups that found nothing and became the fetching leader.
    pub misses: u64,
    /// Entries evicted to stay within the memory budget.
    pub evictions: u64,
    /// Hits that waited for an in-flight leader instead of finding a
    /// completed entry immediately (the single-flight savings).
    pub coalesced: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Bytes currently cached.
    pub bytes: usize,
}

/// How the cache bounds its memory.
enum Budget {
    /// Plain byte cap.
    Fixed(usize),
    /// Reservation on a governor pool: the budget is the reservation's,
    /// and fleet-level pressure (pool over budget) also forces eviction.
    Governed(MemoryReservation),
}

struct Entry {
    rel: Arc<Relation>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    ready: HashMap<SourceQueryKey, Entry>,
    /// Keys currently being fetched, with the flight (query) leading each.
    pending: HashMap<SourceQueryKey, u64>,
    /// Pending leases held per flight. A flight that holds a lease never
    /// *waits* on another flight (it bypasses instead): sequential-open
    /// operators create their streams before draining any, so two queries
    /// leading each other's next key would otherwise deadlock AB-BA.
    held: HashMap<u64, usize>,
    cached_bytes: usize,
    clock: u64,
}

struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
    budget: Budget,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

impl Shared {
    fn over_budget(&self, inner: &Inner) -> bool {
        match &self.budget {
            Budget::Fixed(cap) => inner.cached_bytes > *cap,
            Budget::Governed(res) => res.under_pressure(),
        }
    }

    fn budget_bytes(&self) -> usize {
        match &self.budget {
            Budget::Fixed(cap) => *cap,
            Budget::Governed(res) => res.budget(),
        }
    }

    fn charge(&self, bytes: usize) {
        if let Budget::Governed(res) = &self.budget {
            res.charge(bytes);
        }
    }

    fn release(&self, bytes: usize) {
        if let Budget::Governed(res) = &self.budget {
            res.release(bytes);
        }
    }

    /// Evict LRU entries until within budget. `protect` (the entry just
    /// inserted) goes last: it is only evicted if it alone exceeds the
    /// budget.
    fn evict_until_within(&self, inner: &mut Inner, protect: Option<&SourceQueryKey>) {
        while self.over_budget(inner) {
            let victim = inner
                .ready
                .iter()
                .filter(|(k, _)| Some(*k) != protect)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .or_else(|| protect.filter(|p| inner.ready.contains_key(*p)).cloned());
            let Some(key) = victim else { break };
            if let Some(e) = inner.ready.remove(&key) {
                inner.cached_bytes -= e.bytes;
                self.release(e.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Result of a cache lookup.
pub enum CacheLookup {
    /// The complete result is cached (or a racing leader just completed
    /// it); stream it from memory.
    Hit(Arc<Relation>),
    /// Nothing cached and no fetch in flight: the caller is the leader and
    /// must fetch, teeing into the lease.
    Lead(FetchLease),
    /// A fetch led by the caller's *own* flight is in progress (e.g. a
    /// self-join whose two scans open sequentially on one thread): the
    /// caller must fetch directly, uncached — waiting would deadlock on
    /// its own undrained stream.
    Bypass,
    /// The caller's cancel flag flipped while waiting for a leader.
    Cancelled,
}

/// Shared, cloneable handle to one cache.
#[derive(Clone)]
pub struct SourceResultCache {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for SourceResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SourceResultCache")
            .field("entries", &s.entries)
            .field("bytes", &s.bytes)
            .finish()
    }
}

impl SourceResultCache {
    /// Cache bounded by a plain byte cap.
    pub fn new(budget_bytes: usize) -> Self {
        Self::with_budget(Budget::Fixed(budget_bytes))
    }

    /// Cache whose memory is governed by `reservation` (typically handed
    /// out by the service's memory governor): insertions charge it, the
    /// effective budget is its budget, and pool-level pressure forces
    /// eviction too.
    pub fn with_reservation(reservation: MemoryReservation) -> Self {
        Self::with_budget(Budget::Governed(reservation))
    }

    fn with_budget(budget: Budget) -> Self {
        SourceResultCache {
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner::default()),
                cv: Condvar::new(),
                budget,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
            }),
        }
    }

    /// Look `key` up for `flight` (an id shared by all scans of one query
    /// — cheap and stable, e.g. the address of the query's control). On a
    /// hit the complete relation is returned; on a cold key the caller
    /// becomes the fetching leader; if *another* flight is already
    /// fetching, block until it completes (or abandons, in which case the
    /// caller is promoted to leader). If the in-flight leader belongs to
    /// the caller's own flight, return [`CacheLookup::Bypass`] instead of
    /// waiting — the leader's stream is drained by the caller's own
    /// thread, so waiting would self-deadlock (self-joins). `cancel`
    /// aborts the wait when flipped from another thread.
    pub fn lookup_or_lead(
        &self,
        key: &SourceQueryKey,
        flight: u64,
        cancel: Option<&AtomicBool>,
    ) -> CacheLookup {
        self.lookup_or_lead_observed(key, flight, cancel).0
    }

    /// [`SourceResultCache::lookup_or_lead`] additionally reporting whether
    /// the caller waited on another flight's in-progress fetch — the bit
    /// that distinguishes a *coalesced* hit from a plain one in per-query
    /// attribution.
    pub fn lookup_or_lead_observed(
        &self,
        key: &SourceQueryKey,
        flight: u64,
        cancel: Option<&AtomicBool>,
    ) -> (CacheLookup, bool) {
        let s = &self.shared;
        let mut inner = s.inner.lock().unwrap();
        let mut waited = false;
        loop {
            if inner.ready.contains_key(key) {
                inner.clock += 1;
                let now = inner.clock;
                let e = inner.ready.get_mut(key).unwrap();
                e.last_used = now;
                let rel = e.rel.clone();
                s.hits.fetch_add(1, Ordering::Relaxed);
                if waited {
                    s.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                return (CacheLookup::Hit(rel), waited);
            }
            if let Some(&leader) = inner.pending.get(key) {
                // Never wait while leading: a flight that holds any
                // undrained lease (its operator opened the stream but has
                // not pulled it yet) must bypass, or two queries leading
                // each other's next key deadlock.
                if leader == flight || inner.held.get(&flight).copied().unwrap_or(0) > 0 {
                    return (CacheLookup::Bypass, waited);
                }
                waited = true;
                inner = match cancel {
                    // Timed slices so a flipped cancel flag is noticed
                    // even if the leader streams for a long time.
                    Some(c) => {
                        if c.load(Ordering::Relaxed) {
                            return (CacheLookup::Cancelled, waited);
                        }
                        s.cv.wait_timeout(inner, Duration::from_millis(5))
                            .unwrap()
                            .0
                    }
                    // No cancel flag to poll: sleep until the leader
                    // fulfils or abandons (both notify_all).
                    None => s.cv.wait(inner).unwrap(),
                };
                continue;
            }
            inner.pending.insert(key.clone(), flight);
            *inner.held.entry(flight).or_insert(0) += 1;
            s.misses.fetch_add(1, Ordering::Relaxed);
            return (
                CacheLookup::Lead(FetchLease {
                    shared: s.clone(),
                    key: key.clone(),
                    flight,
                    done: false,
                }),
                waited,
            );
        }
    }

    /// Whether `other` is a handle to this same cache (identity, not
    /// contents) — used by owners to uninstall only their own cache.
    pub fn same_instance(&self, other: &SourceResultCache) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }

    /// Complete result already cached? (Non-blocking peek; counts nothing.)
    pub fn peek(&self, key: &SourceQueryKey) -> Option<Arc<Relation>> {
        let inner = self.shared.inner.lock().unwrap();
        inner.ready.get(key).map(|e| e.rel.clone())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.shared.inner.lock().unwrap();
        CacheStats {
            hits: self.shared.hits.load(Ordering::Relaxed),
            misses: self.shared.misses.load(Ordering::Relaxed),
            evictions: self.shared.evictions.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
            entries: inner.ready.len(),
            bytes: inner.cached_bytes,
        }
    }

    /// Drop every completed entry (in-flight leaders are unaffected).
    pub fn clear(&self) {
        let mut inner = self.shared.inner.lock().unwrap();
        let bytes = inner.cached_bytes;
        inner.ready.clear();
        inner.cached_bytes = 0;
        self.shared.release(bytes);
    }
}

/// The leader's obligation for one in-flight key: fulfil it with the
/// complete result, or drop it (abandon) so a waiter takes over. Held by
/// the teeing wrapper stream.
pub struct FetchLease {
    shared: Arc<Shared>,
    key: SourceQueryKey,
    flight: u64,
    done: bool,
}

impl FetchLease {
    /// Drop this flight's hold on the lease count (called exactly once,
    /// from `fulfill` or `Drop`).
    fn release_hold(inner: &mut Inner, flight: u64) {
        if let Some(n) = inner.held.get_mut(&flight) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                inner.held.remove(&flight);
            }
        }
    }
}

impl std::fmt::Debug for FetchLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetchLease")
            .field("key", &self.key)
            .finish()
    }
}

impl FetchLease {
    /// The key this lease covers.
    pub fn key(&self) -> &SourceQueryKey {
        &self.key
    }

    /// The cache's byte budget — a result larger than this can never be
    /// retained, so a teeing leader should abandon (and stop buffering)
    /// once its collected bytes pass it.
    pub fn budget_bytes(&self) -> usize {
        self.shared.budget_bytes()
    }

    /// Install the complete result, waking every waiter; evicts LRU
    /// entries to stay within budget.
    pub fn fulfill(mut self, rel: Arc<Relation>) {
        self.done = true;
        let bytes = rel.mem_size();
        let s = self.shared.clone();
        let mut inner = s.inner.lock().unwrap();
        inner.pending.remove(&self.key);
        Self::release_hold(&mut inner, self.flight);
        inner.clock += 1;
        let now = inner.clock;
        inner.cached_bytes += bytes;
        s.charge(bytes);
        inner.ready.insert(
            self.key.clone(),
            Entry {
                rel,
                bytes,
                last_used: now,
            },
        );
        s.evict_until_within(&mut inner, Some(&self.key));
        drop(inner);
        s.cv.notify_all();
    }
}

impl Drop for FetchLease {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Abandon: wake the waiters so one of them is promoted to leader.
        let mut inner = self.shared.inner.lock().unwrap();
        inner.pending.remove(&self.key);
        Self::release_hold(&mut inner, self.flight);
        drop(inner);
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use tukwila_common::{tuple, DataType, Schema};
    use tukwila_storage::MemoryManager;

    fn rel(n: i64) -> Arc<Relation> {
        let schema = Schema::of("s", &[("a", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i]);
        }
        Arc::new(r)
    }

    fn fulfill(cache: &SourceResultCache, key: &SourceQueryKey, r: Arc<Relation>) {
        match cache.lookup_or_lead(key, 1, None) {
            CacheLookup::Lead(lease) => lease.fulfill(r),
            _ => panic!("expected to lead"),
        }
    }

    #[test]
    fn miss_then_hit_accounting() {
        let cache = SourceResultCache::new(1 << 20);
        let key = SourceQueryKey::full_scan("supplier");
        fulfill(&cache, &key, rel(10));
        match cache.lookup_or_lead(&key, 2, None) {
            CacheLookup::Hit(r) => assert_eq!(r.len(), 10),
            _ => panic!("expected hit"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = SourceResultCache::new(1 << 20);
        fulfill(&cache, &SourceQueryKey::full_scan("a"), rel(3));
        fulfill(&cache, &SourceQueryKey::full_scan("b"), rel(7));
        match cache.lookup_or_lead(&SourceQueryKey::full_scan("a"), 1, None) {
            CacheLookup::Hit(r) => assert_eq!(r.len(), 3),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn lru_eviction_under_tight_budget() {
        let one = rel(50);
        let budget = one.mem_size() * 2 + one.mem_size() / 2; // fits 2 of 3
        let cache = SourceResultCache::new(budget);
        for name in ["a", "b", "c"] {
            fulfill(&cache, &SourceQueryKey::full_scan(name), rel(50));
        }
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.bytes <= budget);
        // "a" was least recently used → evicted; "b" and "c" remain.
        assert!(cache.peek(&SourceQueryKey::full_scan("a")).is_none());
        assert!(cache.peek(&SourceQueryKey::full_scan("b")).is_some());
        assert!(cache.peek(&SourceQueryKey::full_scan("c")).is_some());
    }

    #[test]
    fn touch_on_hit_updates_lru_order() {
        let one = rel(50);
        let budget = one.mem_size() * 2 + one.mem_size() / 2;
        let cache = SourceResultCache::new(budget);
        fulfill(&cache, &SourceQueryKey::full_scan("a"), rel(50));
        fulfill(&cache, &SourceQueryKey::full_scan("b"), rel(50));
        // touch "a" so "b" becomes the LRU victim
        assert!(matches!(
            cache.lookup_or_lead(&SourceQueryKey::full_scan("a"), 1, None),
            CacheLookup::Hit(_)
        ));
        fulfill(&cache, &SourceQueryKey::full_scan("c"), rel(50));
        assert!(cache.peek(&SourceQueryKey::full_scan("a")).is_some());
        assert!(cache.peek(&SourceQueryKey::full_scan("b")).is_none());
    }

    #[test]
    fn oversized_entry_is_evicted_itself() {
        let cache = SourceResultCache::new(8); // smaller than any relation
        fulfill(&cache, &SourceQueryKey::full_scan("big"), rel(100));
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn racing_cold_lookups_coalesce_to_one_fetch() {
        let cache = SourceResultCache::new(1 << 20);
        let key = SourceQueryKey::full_scan("slow");
        // Leader takes the lease, then fulfils after a delay.
        let lease = match cache.lookup_or_lead(&key, 1, None) {
            CacheLookup::Lead(l) => l,
            _ => panic!("expected lead"),
        };
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let cache = cache.clone();
            let key = key.clone();
            handles.push(thread::spawn(move || {
                match cache.lookup_or_lead(&key, 100 + i, None) {
                    CacheLookup::Hit(r) => r.len(),
                    _ => panic!("waiter must be served by the leader"),
                }
            }));
        }
        thread::sleep(Duration::from_millis(30));
        lease.fulfill(rel(42));
        for h in handles {
            assert_eq!(h.join().unwrap(), 42);
        }
        let s = cache.stats();
        assert_eq!(s.misses, 1, "single fetch for 5 racing queries");
        assert_eq!(s.hits, 4);
        assert_eq!(s.coalesced, 4);
    }

    #[test]
    fn same_flight_bypasses_its_own_pending_fetch() {
        // A self-join's second scan (same query, same source, same thread)
        // must not wait on the lease its own thread holds — that would
        // deadlock. It bypasses and fetches directly instead.
        let cache = SourceResultCache::new(1 << 20);
        let key = SourceQueryKey::full_scan("s");
        let lease = match cache.lookup_or_lead(&key, 7, None) {
            CacheLookup::Lead(l) => l,
            _ => panic!("expected lead"),
        };
        assert!(
            matches!(cache.lookup_or_lead(&key, 7, None), CacheLookup::Bypass),
            "same flight must bypass, not wait"
        );
        lease.fulfill(rel(3));
        // Once the entry is ready the same flight hits like anyone else.
        assert!(matches!(
            cache.lookup_or_lead(&key, 7, None),
            CacheLookup::Hit(_)
        ));
    }

    #[test]
    fn lease_holder_bypasses_other_flights_pending_keys() {
        // AB-BA shape: flight 1 leads X then looks up Y (led by flight 2);
        // flight 2 leads Y then looks up X. Sequential-open operators hold
        // their leases undrained at this point, so *waiting* on either
        // side would deadlock. Both sides must bypass instead.
        let cache = SourceResultCache::new(1 << 20);
        let x = SourceQueryKey::full_scan("x");
        let y = SourceQueryKey::full_scan("y");
        let lease_x = match cache.lookup_or_lead(&x, 1, None) {
            CacheLookup::Lead(l) => l,
            _ => panic!("expected lead"),
        };
        let lease_y = match cache.lookup_or_lead(&y, 2, None) {
            CacheLookup::Lead(l) => l,
            _ => panic!("expected lead"),
        };
        assert!(
            matches!(cache.lookup_or_lead(&y, 1, None), CacheLookup::Bypass),
            "flight 1 holds X's lease; it must not wait on Y"
        );
        assert!(
            matches!(cache.lookup_or_lead(&x, 2, None), CacheLookup::Bypass),
            "flight 2 holds Y's lease; it must not wait on X"
        );
        // Once a flight's leases resolve, it waits/coalesces normally again.
        lease_x.fulfill(rel(1));
        lease_y.fulfill(rel(2));
        assert!(matches!(
            cache.lookup_or_lead(&y, 1, None),
            CacheLookup::Hit(_)
        ));
    }

    #[test]
    fn abandoned_lease_promotes_a_waiter() {
        let cache = SourceResultCache::new(1 << 20);
        let key = SourceQueryKey::full_scan("flaky");
        let lease = match cache.lookup_or_lead(&key, 1, None) {
            CacheLookup::Lead(l) => l,
            _ => panic!("expected lead"),
        };
        let waiter = {
            let cache = cache.clone();
            let key = key.clone();
            thread::spawn(move || match cache.lookup_or_lead(&key, 2, None) {
                CacheLookup::Lead(l) => {
                    l.fulfill(rel(7));
                    "promoted"
                }
                CacheLookup::Hit(_) => "hit",
                CacheLookup::Bypass => "bypass",
                CacheLookup::Cancelled => "cancelled",
            })
        };
        thread::sleep(Duration::from_millis(20));
        drop(lease); // leader fails → abandon
        assert_eq!(waiter.join().unwrap(), "promoted");
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn cancelled_waiter_returns_promptly() {
        let cache = SourceResultCache::new(1 << 20);
        let key = SourceQueryKey::full_scan("stuck");
        let _lease = match cache.lookup_or_lead(&key, 1, None) {
            CacheLookup::Lead(l) => l,
            _ => panic!("expected lead"),
        };
        let cancel = Arc::new(AtomicBool::new(false));
        let waiter = {
            let cache = cache.clone();
            let key = key.clone();
            let cancel = cancel.clone();
            thread::spawn(move || {
                matches!(
                    cache.lookup_or_lead(&key, 2, Some(&cancel)),
                    CacheLookup::Cancelled
                )
            })
        };
        thread::sleep(Duration::from_millis(10));
        cancel.store(true, Ordering::Relaxed);
        assert!(waiter.join().unwrap(), "wait must observe the cancel flag");
    }

    #[test]
    fn governed_budget_charges_reservation() {
        let mm = MemoryManager::new();
        let res = mm.register("cache", 1 << 20);
        let cache = SourceResultCache::with_reservation(res.clone());
        fulfill(&cache, &SourceQueryKey::full_scan("a"), rel(20));
        assert_eq!(res.usage().used, cache.stats().bytes);
        cache.clear();
        assert_eq!(res.usage().used, 0);
    }

    #[test]
    fn governed_pressure_forces_eviction() {
        let one = rel(50);
        let mm = MemoryManager::new();
        let res = mm.register("cache", one.mem_size() * 2 + one.mem_size() / 2);
        let cache = SourceResultCache::with_reservation(res);
        for name in ["a", "b", "c"] {
            fulfill(&cache, &SourceQueryKey::full_scan(name), rel(50));
        }
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1);
    }
}
