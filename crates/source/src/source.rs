//! Simulated autonomous data sources.
//!
//! A [`SimulatedSource`] owns a relation and a [`LinkModel`]; each
//! [`SourceConnection`] replays the relation through the model with real
//! (interruptible) sleeps. Connections are independent — a collector racing
//! two mirrors gets two connections with independent jitter streams.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tukwila_common::{Relation, Schema, Tuple, TupleBatch};

use crate::interruptible_sleep;
use crate::link::LinkModel;

/// What a connection yields next.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceEvent {
    /// A data tuple arrived.
    Tuple(Tuple),
    /// The stream finished normally.
    End,
    /// The connection failed permanently (after `fail_after` tuples, or the
    /// source was unavailable).
    Error(String),
    /// The pull was cancelled via the cancel flag before data arrived.
    Cancelled,
}

/// Batch-granularity variant of [`SourceEvent`]: the wrapper delivery path
/// hands over arrival *bursts* as [`TupleBatch`]es instead of per-tuple
/// events.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceBatchEvent {
    /// One or more tuples arrived together (never empty).
    Batch(TupleBatch),
    /// The stream finished normally.
    End,
    /// The connection failed permanently.
    Error(String),
    /// The pull was cancelled before data arrived.
    Cancelled,
}

impl SourceBatchEvent {
    /// Lift a per-tuple event into the batch domain.
    pub fn from_event(ev: SourceEvent) -> Self {
        match ev {
            SourceEvent::Tuple(t) => SourceBatchEvent::Batch(TupleBatch::singleton(t)),
            SourceEvent::End => SourceBatchEvent::End,
            SourceEvent::Error(e) => SourceBatchEvent::Error(e),
            SourceEvent::Cancelled => SourceBatchEvent::Cancelled,
        }
    }
}

/// A simulated remote data source.
#[derive(Debug, Clone)]
pub struct SimulatedSource {
    name: String,
    relation: Arc<Relation>,
    link: LinkModel,
    seed: u64,
}

impl SimulatedSource {
    /// Create a source named `name` serving `relation` through `link`.
    ///
    /// The relation's columnar representation is forced **here** — at
    /// registry-setup time, outside any timed query window — so every
    /// connection serves typed columnar slices instead of cloning row
    /// views, and downstream kernels never pay a conversion. Only the
    /// columnar form is retained: a relation built row-by-row would
    /// otherwise pin one allocation per tuple, and freeing those when the
    /// registry drops lands inside the query's timed window. Per-tuple
    /// consumers ([`SourceConnection::next_event`]) rematerialize row
    /// views lazily.
    pub fn new(name: impl Into<String>, relation: Relation, link: LinkModel) -> Self {
        SimulatedSource {
            name: name.into(),
            relation: Arc::new(relation.columnar_only()),
            link,
            seed: 0x7u64,
        }
    }

    /// Override the jitter seed (defaults to a fixed value; connections add
    /// their ordinal so two connections never share a jitter stream).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Source name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema of the served relation.
    pub fn schema(&self) -> &Schema {
        self.relation.schema()
    }

    /// Cardinality of the served relation — the "true" statistic the
    /// catalog may or may not know.
    pub fn cardinality(&self) -> usize {
        self.relation.len()
    }

    /// The underlying relation (tests, gold results).
    pub fn relation(&self) -> &Arc<Relation> {
        &self.relation
    }

    /// The link model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Replace the link model (workload setup convenience).
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Open a connection. `conn_ordinal` distinguishes parallel connections
    /// for jitter seeding.
    pub fn connect(&self, conn_ordinal: u64) -> SourceConnection {
        SourceConnection {
            source_name: self.name.clone(),
            relation: self.relation.clone(),
            link: self.link.clone(),
            rng: StdRng::seed_from_u64(
                self.seed ^ (conn_ordinal.wrapping_mul(0xD1B5_4A32_D192_ED03)),
            ),
            pos: 0,
            started: false,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }
}

/// An open connection streaming tuples with link-model delays.
pub struct SourceConnection {
    source_name: String,
    relation: Arc<Relation>,
    link: LinkModel,
    rng: StdRng,
    pos: usize,
    started: bool,
    cancel: Arc<AtomicBool>,
}

impl SourceConnection {
    /// A handle that cancels this connection from another thread (collector
    /// `deactivate`, engine teardown).
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// Name of the source this connection reads.
    pub fn source_name(&self) -> &str {
        &self.source_name
    }

    /// Tuples delivered so far.
    pub fn delivered(&self) -> usize {
        self.pos
    }

    fn jittered(&mut self, d: Duration) -> Duration {
        if self.link.jitter_frac <= 0.0 || d.is_zero() {
            return d;
        }
        let f = 1.0
            + self
                .rng
                .gen_range(-self.link.jitter_frac..self.link.jitter_frac);
        d.mul_f64(f.max(0.0))
    }

    /// Block until the next tuple arrives (per the link model) and return
    /// it. Returns [`SourceEvent::End`] at stream end, `Error` on injected
    /// failure, `Cancelled` if the cancel flag was raised mid-wait.
    pub fn next_event(&mut self) -> SourceEvent {
        match self.pace_one() {
            // `pace_one` advanced past the arrived row; clone its view.
            None => SourceEvent::Tuple(self.relation.tuples()[self.pos - 1].clone()),
            Some(terminal) => terminal,
        }
    }

    /// Wait out the link model for exactly one row. Returns `None` when a
    /// row arrived (`self.pos` advanced past it) and `Some(event)` on a
    /// terminal condition. Touches **only** positions — never the
    /// relation's row or column data — so the batch path can slice the
    /// columnar form without ever materializing row views.
    ///
    /// KEEP IN LOCKSTEP with [`SourceConnection::zero_wait_run`]: any new
    /// delay or terminal condition added here must be mirrored there.
    fn pace_one(&mut self) -> Option<SourceEvent> {
        if self.cancel.load(Ordering::Relaxed) {
            return Some(SourceEvent::Cancelled);
        }
        if !self.started {
            self.started = true;
            if self.link.unavailable {
                return Some(SourceEvent::Error(format!(
                    "source `{}` refused connection",
                    self.source_name
                )));
            }
            let d = self.jittered(self.link.initial_delay);
            if !interruptible_sleep(d, &self.cancel) {
                return Some(SourceEvent::Cancelled);
            }
        }
        if let Some(f) = self.link.fail_after {
            if self.pos >= f {
                return Some(SourceEvent::Error(format!(
                    "source `{}` connection dropped after {f} tuples",
                    self.source_name
                )));
            }
        }
        if self.pos >= self.relation.len() {
            return Some(SourceEvent::End);
        }
        if let Some(s) = self.link.stall_after {
            if self.pos == s {
                let d = self.link.stall_duration;
                if !interruptible_sleep(d, &self.cancel) {
                    return Some(SourceEvent::Cancelled);
                }
            }
        }
        // burst gap every `burst_size` tuples (not before the first)
        if self.pos > 0
            && self.link.burst_size != usize::MAX
            && self.link.burst_size > 0
            && self.pos.is_multiple_of(self.link.burst_size)
        {
            let d = self.jittered(self.link.burst_gap);
            if !interruptible_sleep(d, &self.cancel) {
                return Some(SourceEvent::Cancelled);
            }
        }
        let d = self.jittered(self.link.per_tuple);
        if !d.is_zero() && !interruptible_sleep(d, &self.cancel) {
            return Some(SourceEvent::Cancelled);
        }
        self.pos += 1;
        None
    }

    /// Length of the run of tuples starting at `pos` that would arrive
    /// with **zero** waiting (capped at `want`): the bulk-delivery window a
    /// burst can hand over without re-checking the link model per tuple.
    /// This is what makes a burst a burst — tuples that have effectively
    /// "already arrived on the wire" are handed over together, while any
    /// tuple that requires waiting ends the batch.
    ///
    /// KEEP IN LOCKSTEP with [`SourceConnection::next_event`]: every sleep
    /// or terminal condition there must bound the run here, or
    /// `next_batch_event` silently sleeps mid-burst (the behavioral tests
    /// `paced_link_delivers_singletons` / `burst_gap_ends_batches` /
    /// `batch_stops_at_stall` pin each knob).
    fn zero_wait_run(&self, want: usize) -> usize {
        if self.cancel.load(Ordering::Relaxed)
            || !self.started
            || !self.link.per_tuple.is_zero()
            || self.pos >= self.relation.len()
        {
            return 0;
        }
        let mut end = self.relation.len();
        if let Some(f) = self.link.fail_after {
            if self.pos >= f {
                return 0;
            }
            end = end.min(f);
        }
        if let Some(s) = self.link.stall_after {
            if self.pos == s {
                return 0;
            }
            if s > self.pos {
                end = end.min(s);
            }
        }
        let burst_bounded = self.link.burst_size != usize::MAX
            && self.link.burst_size > 0
            && !self.link.burst_gap.is_zero();
        if burst_bounded {
            if self.pos > 0 && self.pos.is_multiple_of(self.link.burst_size) {
                return 0; // a burst gap is due right now
            }
            let next_gap = (self.pos / self.link.burst_size + 1) * self.link.burst_size;
            end = end.min(next_gap);
        }
        end.saturating_sub(self.pos).min(want)
    }

    /// Block until data arrives, then hand over the whole arrival burst (up
    /// to `max` tuples): the first tuple is pulled with the full link-model
    /// wait; subsequent tuples join the batch only while they are available
    /// without *any* further waiting. Terminal conditions encountered
    /// mid-burst are left for the next call, so `End`/`Error`/`Cancelled`
    /// surface on their own (sticky) pull exactly as in the per-tuple API.
    ///
    /// Fast sources take the bulk path: the zero-wait run is computed once
    /// and the batch is handed over as a **columnar slice** of the
    /// relation's cached columnar form ([`Relation::columnar_cached`]) —
    /// no per-tuple clone, no row views built — falling back to a row
    /// slice clone only when the relation was never converted.
    pub fn next_batch_event(&mut self, max: usize) -> SourceBatchEvent {
        let start = self.pos;
        if let Some(terminal) = self.pace_one() {
            return SourceBatchEvent::from_event(terminal);
        }
        debug_assert_eq!(self.pos, start + 1, "pace_one advances one row");
        // Extend the batch with zero-wait runs: everything delivered by one
        // call is a contiguous span of relation rows [start, self.pos).
        let mut taken = 1usize;
        while taken < max {
            let run = self.zero_wait_run(max - taken);
            if run == 0 {
                break;
            }
            self.pos += run;
            taken += run;
        }
        let batch = match self.relation.columnar_cached() {
            Some(cols) => TupleBatch::from_columns(cols.slice(start, self.pos)),
            None => TupleBatch::from_tuples(self.relation.tuples()[start..self.pos].to_vec()),
        };
        SourceBatchEvent::Batch(batch)
    }

    /// Drain the remaining stream into a vector (tests; ignores delays'
    /// effects beyond waiting them out).
    pub fn drain(&mut self) -> Result<Vec<Tuple>, String> {
        let mut out = Vec::new();
        loop {
            match self.next_event() {
                SourceEvent::Tuple(t) => out.push(t),
                SourceEvent::End => return Ok(out),
                SourceEvent::Error(e) => return Err(e),
                SourceEvent::Cancelled => return Err("cancelled".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;
    use tukwila_common::{tuple, DataType, Schema};

    fn rel(n: i64) -> Relation {
        let schema = Schema::of("s", &[("a", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i]);
        }
        r
    }

    #[test]
    fn streams_all_tuples_in_order() {
        let src = SimulatedSource::new("s1", rel(100), LinkModel::instant());
        let got = src.connect(0).drain().unwrap();
        assert_eq!(got.len(), 100);
        assert_eq!(got[7], tuple![7]);
    }

    #[test]
    fn initial_delay_observed() {
        let link = LinkModel {
            initial_delay: Duration::from_millis(30),
            ..LinkModel::instant()
        };
        let src = SimulatedSource::new("s1", rel(5), link);
        let start = Instant::now();
        let mut conn = src.connect(0);
        let first = conn.next_event();
        assert!(matches!(first, SourceEvent::Tuple(_)));
        assert!(start.elapsed() >= Duration::from_millis(25));
        // subsequent tuples come instantly
        let t2 = Instant::now();
        conn.next_event();
        assert!(t2.elapsed() < Duration::from_millis(10));
    }

    #[test]
    fn unavailable_source_errors_at_connect() {
        let src = SimulatedSource::new("down", rel(5), LinkModel::down());
        match src.connect(0).next_event() {
            SourceEvent::Error(e) => assert!(e.contains("down")),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn fail_after_injects_error_mid_stream() {
        let src = SimulatedSource::new("flaky", rel(10), LinkModel::failing(4));
        let mut conn = src.connect(0);
        let mut n = 0;
        loop {
            match conn.next_event() {
                SourceEvent::Tuple(_) => n += 1,
                SourceEvent::Error(_) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn cancel_interrupts_stall() {
        let src = SimulatedSource::new("stall", rel(10), LinkModel::stalling(2));
        let mut conn = src.connect(0);
        let cancel = conn.cancel_handle();
        assert!(matches!(conn.next_event(), SourceEvent::Tuple(_)));
        assert!(matches!(conn.next_event(), SourceEvent::Tuple(_)));
        // Third pull would stall for an hour; cancel from another thread.
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cancel.store(true, Ordering::Relaxed);
        });
        let start = Instant::now();
        let ev = conn.next_event();
        h.join().unwrap();
        assert_eq!(ev, SourceEvent::Cancelled);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn end_is_sticky() {
        let src = SimulatedSource::new("s", rel(1), LinkModel::instant());
        let mut conn = src.connect(0);
        assert!(matches!(conn.next_event(), SourceEvent::Tuple(_)));
        assert_eq!(conn.next_event(), SourceEvent::End);
        assert_eq!(conn.next_event(), SourceEvent::End);
        assert_eq!(conn.delivered(), 1);
    }

    #[test]
    fn instant_link_delivers_full_bursts() {
        let src = SimulatedSource::new("s", rel(100), LinkModel::instant());
        let mut conn = src.connect(0);
        match conn.next_batch_event(64) {
            SourceBatchEvent::Batch(b) => assert_eq!(b.len(), 64),
            other => panic!("unexpected {other:?}"),
        }
        match conn.next_batch_event(64) {
            SourceBatchEvent::Batch(b) => assert_eq!(b.len(), 36),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(conn.next_batch_event(64), SourceBatchEvent::End);
        assert_eq!(conn.next_batch_event(64), SourceBatchEvent::End);
    }

    #[test]
    fn paced_link_delivers_singletons() {
        let link = LinkModel {
            per_tuple: Duration::from_micros(200),
            ..LinkModel::instant()
        };
        let src = SimulatedSource::new("s", rel(5), link);
        let mut conn = src.connect(0);
        for _ in 0..5 {
            match conn.next_batch_event(64) {
                SourceBatchEvent::Batch(b) => assert_eq!(b.len(), 1),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(conn.next_batch_event(64), SourceBatchEvent::End);
    }

    #[test]
    fn burst_gap_ends_batches() {
        // burst_size 4 with a non-zero gap: each batch covers one burst.
        let link = LinkModel {
            burst_size: 4,
            burst_gap: Duration::from_micros(200),
            ..LinkModel::instant()
        };
        let src = SimulatedSource::new("s", rel(10), link);
        let mut conn = src.connect(0);
        let mut sizes = Vec::new();
        loop {
            match conn.next_batch_event(64) {
                SourceBatchEvent::Batch(b) => sizes.push(b.len()),
                SourceBatchEvent::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn batch_stops_before_failure_then_errors() {
        let src = SimulatedSource::new("flaky", rel(10), LinkModel::failing(4));
        let mut conn = src.connect(0);
        match conn.next_batch_event(64) {
            SourceBatchEvent::Batch(b) => assert_eq!(b.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            conn.next_batch_event(64),
            SourceBatchEvent::Error(_)
        ));
    }

    #[test]
    fn batch_stops_at_stall() {
        let src = SimulatedSource::new("stall", rel(10), LinkModel::stalling(3));
        let mut conn = src.connect(0);
        match conn.next_batch_event(64) {
            SourceBatchEvent::Batch(b) => assert_eq!(b.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        // the next pull would stall; cancel instead of waiting an hour
        conn.cancel_handle().store(true, Ordering::Relaxed);
        assert_eq!(conn.next_batch_event(64), SourceBatchEvent::Cancelled);
    }

    #[test]
    fn batches_preserve_order_and_content() {
        let src = SimulatedSource::new("s", rel(50), LinkModel::instant());
        let mut conn = src.connect(0);
        let mut all = Vec::new();
        loop {
            match conn.next_batch_event(7) {
                SourceBatchEvent::Batch(b) => all.extend(b.into_tuples()),
                SourceBatchEvent::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        let gold = src.connect(1).drain().unwrap();
        assert_eq!(all, gold);
    }

    #[test]
    fn jitter_deterministic_per_connection_ordinal() {
        let link = LinkModel {
            per_tuple: Duration::from_micros(100),
            jitter_frac: 0.5,
            ..LinkModel::instant()
        };
        let src = SimulatedSource::new("s", rel(20), link).with_seed(9);
        let a: Vec<Tuple> = src.connect(3).drain().unwrap();
        let b: Vec<Tuple> = src.connect(3).drain().unwrap();
        assert_eq!(a, b); // data identical; timing paths share the rng seed
    }
}
