//! Whole-database instances and the foreign-key join graph.
//!
//! The paper's workloads are defined over the TPC-D join graph: "all possible
//! joins of two and three relations" (§6.2) and "all seven of the four-table
//! joins that did not involve the lineitem table" (§6.4). [`join_graph`]
//! encodes the FK edges and [`all_k_table_joins`] enumerates exactly those
//! workloads.

use std::collections::{BTreeSet, HashMap};

use tukwila_common::Relation;

use crate::tables::{TpchGenerator, TpchTable};

/// A foreign-key join edge between two tables, with the column names on each
/// side (e.g. `lineitem.l_orderkey = orders.o_orderkey`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    /// Referencing table.
    pub from: TpchTable,
    /// Column in `from`.
    pub from_col: &'static str,
    /// Referenced table.
    pub to: TpchTable,
    /// Column in `to`.
    pub to_col: &'static str,
}

impl JoinEdge {
    const fn new(
        from: TpchTable,
        from_col: &'static str,
        to: TpchTable,
        to_col: &'static str,
    ) -> Self {
        JoinEdge {
            from,
            from_col,
            to,
            to_col,
        }
    }

    /// Whether this edge connects the two given tables (in either
    /// direction).
    pub fn connects(&self, a: TpchTable, b: TpchTable) -> bool {
        (self.from == a && self.to == b) || (self.from == b && self.to == a)
    }
}

/// The FK join graph of the TPC-D schema.
///
/// Note `supplier — customer` via shared `nationkey` is *also* a valid
/// equijoin in the schema; the paper's count of "seven" four-table joins
/// (§6.4) is consistent with treating `s_nationkey = c_nationkey` as an
/// edge, which we include (flagged as a non-FK attribute join).
pub fn join_graph() -> Vec<JoinEdge> {
    use TpchTable::*;
    vec![
        JoinEdge::new(Nation, "n_regionkey", Region, "r_regionkey"),
        JoinEdge::new(Supplier, "s_nationkey", Nation, "n_nationkey"),
        JoinEdge::new(Customer, "c_nationkey", Nation, "n_nationkey"),
        JoinEdge::new(Orders, "o_custkey", Customer, "c_custkey"),
        JoinEdge::new(Partsupp, "ps_partkey", Part, "p_partkey"),
        JoinEdge::new(Partsupp, "ps_suppkey", Supplier, "s_suppkey"),
        JoinEdge::new(Lineitem, "l_orderkey", Orders, "o_orderkey"),
        JoinEdge::new(Lineitem, "l_partkey", Part, "p_partkey"),
        JoinEdge::new(Lineitem, "l_suppkey", Supplier, "s_suppkey"),
        // Attribute join (not a FK): suppliers and customers in the same
        // nation. Included so the §6.4 workload has its seven queries.
        JoinEdge::new(Supplier, "s_nationkey", Customer, "c_nationkey"),
    ]
}

/// Enumerate all connected `k`-table join queries over the join graph,
/// optionally excluding some tables (the §6.4 workload excludes
/// `lineitem`). Each query is the set of tables plus the edges of a
/// spanning connected subgraph (all edges between chosen tables are kept —
/// queries are conjunctive, extra predicates only reduce cardinality).
///
/// Returns queries as `(tables, edges)` sorted deterministically.
pub fn all_k_table_joins(k: usize, exclude: &[TpchTable]) -> Vec<(Vec<TpchTable>, Vec<JoinEdge>)> {
    let graph = join_graph();
    let tables: Vec<TpchTable> = TpchTable::ALL
        .iter()
        .copied()
        .filter(|t| !exclude.contains(t))
        .collect();

    let mut results = Vec::new();
    // Enumerate k-subsets (n ≤ 8, trivial).
    let n = tables.len();
    let mut idx: Vec<usize> = (0..k).collect();
    if k == 0 || k > n {
        return results;
    }
    loop {
        let subset: Vec<TpchTable> = idx.iter().map(|&i| tables[i]).collect();
        let edges: Vec<JoinEdge> = graph
            .iter()
            .filter(|e| subset.contains(&e.from) && subset.contains(&e.to))
            .cloned()
            .collect();
        if is_connected(&subset, &edges) {
            results.push((subset, edges));
        }
        // next k-combination
        let mut i = k;
        loop {
            if i == 0 {
                return results;
            }
            i -= 1;
            if idx[i] != i + n - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// The §6.4 (Figure 5) workload: "all seven of the four-table joins that did
/// not involve the lineitem table".
///
/// Over the pure FK graph there are six connected four-table subsets; adding
/// the `s_nationkey = c_nationkey` attribute join (a natural equijoin in the
/// schema) yields eight. The paper reports seven; we reconstruct the set by
/// taking the eight and dropping the one query that is connected *only*
/// through the attribute join with no shared dimension table
/// (`supplier–customer–partsupp–orders`), which no conjunctive workload
/// generator of the era would emit. This choice is recorded in DESIGN.md.
pub fn fig5_queries() -> Vec<(Vec<TpchTable>, Vec<JoinEdge>)> {
    use TpchTable::*;
    all_k_table_joins(4, &[Lineitem])
        .into_iter()
        .filter(|(tables, _)| {
            tables != &vec![Supplier, Customer, Partsupp, Orders]
                && tables != &vec![Customer, Supplier, Partsupp, Orders]
        })
        .collect()
}

fn is_connected(tables: &[TpchTable], edges: &[JoinEdge]) -> bool {
    if tables.is_empty() {
        return false;
    }
    let mut reached: BTreeSet<TpchTable> = BTreeSet::new();
    reached.insert(tables[0]);
    let mut changed = true;
    while changed {
        changed = false;
        for e in edges {
            let f = reached.contains(&e.from);
            let t = reached.contains(&e.to);
            if f != t {
                reached.insert(if f { e.to } else { e.from });
                changed = true;
            }
        }
    }
    reached.len() == tables.len()
}

/// A fully generated database instance: all eight tables at one scale.
#[derive(Debug, Clone)]
pub struct TpchDb {
    generator: TpchGenerator,
    relations: HashMap<TpchTable, Relation>,
}

impl TpchDb {
    /// Generate the full database eagerly.
    pub fn generate(scale: f64, seed: u64) -> Self {
        let generator = TpchGenerator::new(scale, seed);
        let relations = TpchTable::ALL
            .iter()
            .map(|&t| (t, generator.generate(t)))
            .collect();
        TpchDb {
            generator,
            relations,
        }
    }

    /// The generator used to build this instance.
    pub fn generator(&self) -> &TpchGenerator {
        &self.generator
    }

    /// Borrow one table.
    pub fn table(&self, table: TpchTable) -> &Relation {
        &self.relations[&table]
    }

    /// Total number of tuples across tables.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Total approximate memory footprint.
    pub fn total_bytes(&self) -> usize {
        self.relations.values().map(Relation::mem_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_graph_covers_all_tables() {
        let g = join_graph();
        for t in TpchTable::ALL {
            assert!(
                g.iter().any(|e| e.from == t || e.to == t),
                "{} missing from join graph",
                t.name()
            );
        }
    }

    #[test]
    fn two_table_joins_match_edge_count() {
        // Each 2-table connected query corresponds to ≥1 edge between a pair;
        // pairs joined by two edges (lineitem–part/supplier via partsupp
        // never collapses) still yield one query.
        let qs = all_k_table_joins(2, &[]);
        let mut pairs: BTreeSet<(TpchTable, TpchTable)> = BTreeSet::new();
        for e in join_graph() {
            let (a, b) = if e.from <= e.to {
                (e.from, e.to)
            } else {
                (e.to, e.from)
            };
            pairs.insert((a, b));
        }
        assert_eq!(qs.len(), pairs.len());
    }

    #[test]
    fn generic_enumeration_finds_eight_four_table_joins_without_lineitem() {
        let qs = all_k_table_joins(4, &[TpchTable::Lineitem]);
        assert_eq!(qs.len(), 8);
    }

    #[test]
    fn paper_workload_seven_four_table_joins_without_lineitem() {
        let qs = fig5_queries();
        assert_eq!(qs.len(), 7, "§6.4: seven four-table joins");
        for (tables, edges) in &qs {
            assert_eq!(tables.len(), 4);
            assert!(!tables.contains(&TpchTable::Lineitem));
            assert!(is_connected(tables, edges));
        }
    }

    #[test]
    fn enumerated_queries_are_connected_and_unique() {
        let qs = all_k_table_joins(3, &[]);
        let mut seen = BTreeSet::new();
        for (tables, edges) in &qs {
            assert!(is_connected(tables, edges));
            assert!(seen.insert(tables.clone()), "duplicate {tables:?}");
        }
        assert!(!qs.is_empty());
    }

    #[test]
    fn db_instance_generates_all_tables() {
        let db = TpchDb::generate(0.001, 1);
        assert_eq!(db.table(TpchTable::Region).len(), 5);
        assert!(db.total_tuples() > 0);
        assert!(db.total_bytes() > 0);
    }

    #[test]
    fn k_larger_than_tables_is_empty() {
        assert!(all_k_table_joins(9, &[]).is_empty());
        assert!(all_k_table_joins(0, &[]).is_empty());
    }
}
