//! # tukwila-tpchgen
//!
//! A deterministic, seeded TPC-D/TPC-H-style data generator — the substitute
//! for the `dbgen 1.31` + IBM DB2 setup of the paper's evaluation (§6.1).
//!
//! The Tukwila experiments do not depend on TPC-D's text grammar or pricing
//! rules; they depend on the *relational structure*: eight tables with the
//! standard primary/foreign-key relationships and cardinality ratios
//! (`lineitem` ≫ `orders` ≫ `partsupp` ≫ …), so that join orders matter,
//! intermediate results vary by orders of magnitude, and selectivity
//! misestimates have consequences. This crate reproduces exactly that:
//!
//! * all eight tables ([`TpchTable`]) with correct PK/FK structure,
//! * cardinalities scaled by a continuous scale factor (SF 1.0 ≈ the classic
//!   ratios: 6M lineitem, 1.5M orders, 800k partsupp, …),
//! * deterministic output: same `(table, scale, seed)` → same relation,
//! * the foreign-key join graph ([`join_graph`]) used to enumerate the
//!   paper's "all 2- and 3-relation joins" (§6.2) and "all seven four-table
//!   joins that do not involve lineitem" (§6.4) workloads.

pub mod db;
pub mod tables;
pub mod text;

pub use db::{all_k_table_joins, fig5_queries, join_graph, JoinEdge, TpchDb};
pub use tables::{table_schema, TpchGenerator, TpchTable};
