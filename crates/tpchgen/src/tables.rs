//! The eight TPC-D/H tables and their generators.
//!
//! Keys follow TPC conventions: 1-based dense primary keys; `partsupp` links
//! each part to four suppliers spread across the supplier table; `lineitem`
//! has 1–7 lines per order with independent part/supplier FKs. One third of
//! customers place no orders (TPC-D's "positive ratio" rule), which gives
//! the customer⋈orders join a selectivity below 1 — useful for the
//! misestimation experiments (§6.4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tukwila_common::{DataType, Relation, Schema, Tuple, Value};

use crate::text;

/// The eight tables of the TPC-D schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TpchTable {
    /// 5 rows, fixed.
    Region,
    /// 25 rows, fixed.
    Nation,
    /// SF × 10 000.
    Supplier,
    /// SF × 150 000.
    Customer,
    /// SF × 200 000.
    Part,
    /// SF × 800 000 (4 suppliers per part).
    Partsupp,
    /// SF × 1 500 000.
    Orders,
    /// ≈ SF × 6 000 000 (1–7 lines per order).
    Lineitem,
}

impl TpchTable {
    /// All tables, in FK-dependency order (parents first).
    pub const ALL: [TpchTable; 8] = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Customer,
        TpchTable::Part,
        TpchTable::Partsupp,
        TpchTable::Orders,
        TpchTable::Lineitem,
    ];

    /// Canonical lowercase name (matches the paper's usage: `lineitem`,
    /// `partsupp`, `order`…).
    pub fn name(&self) -> &'static str {
        match self {
            TpchTable::Region => "region",
            TpchTable::Nation => "nation",
            TpchTable::Supplier => "supplier",
            TpchTable::Customer => "customer",
            TpchTable::Part => "part",
            TpchTable::Partsupp => "partsupp",
            TpchTable::Orders => "orders",
            TpchTable::Lineitem => "lineitem",
        }
    }

    /// Look a table up by name.
    pub fn from_name(name: &str) -> Option<TpchTable> {
        TpchTable::ALL.iter().copied().find(|t| t.name() == name)
    }

    /// Base cardinality at SF 1.0 (lineitem is approximate: 4 lines per
    /// order on average).
    pub fn base_cardinality(&self) -> usize {
        match self {
            TpchTable::Region => text::REGION_COUNT,
            TpchTable::Nation => text::NATION_COUNT,
            TpchTable::Supplier => 10_000,
            TpchTable::Customer => 150_000,
            TpchTable::Part => 200_000,
            TpchTable::Partsupp => 800_000,
            TpchTable::Orders => 1_500_000,
            TpchTable::Lineitem => 6_000_000,
        }
    }

    /// Scaled cardinality: fixed tables ignore SF; others scale linearly
    /// with a floor of 1.
    pub fn cardinality(&self, scale: f64) -> usize {
        match self {
            TpchTable::Region | TpchTable::Nation => self.base_cardinality(),
            TpchTable::Lineitem => {
                // derived from orders; reported approximately
                (TpchTable::Orders.cardinality(scale) * 4).max(1)
            }
            _ => ((self.base_cardinality() as f64 * scale).round() as usize).max(1),
        }
    }
}

/// Schema of a table. Column subset chosen to keep tuples representative
/// (~60–140 bytes) while carrying every key used by the paper's joins.
pub fn table_schema(table: TpchTable) -> Schema {
    use DataType::*;
    match table {
        TpchTable::Region => Schema::of(
            "region",
            &[("r_regionkey", Int), ("r_name", Str), ("r_comment", Str)],
        ),
        TpchTable::Nation => Schema::of(
            "nation",
            &[
                ("n_nationkey", Int),
                ("n_name", Str),
                ("n_regionkey", Int),
                ("n_comment", Str),
            ],
        ),
        TpchTable::Supplier => Schema::of(
            "supplier",
            &[
                ("s_suppkey", Int),
                ("s_name", Str),
                ("s_nationkey", Int),
                ("s_acctbal", Double),
                ("s_comment", Str),
            ],
        ),
        TpchTable::Customer => Schema::of(
            "customer",
            &[
                ("c_custkey", Int),
                ("c_name", Str),
                ("c_nationkey", Int),
                ("c_acctbal", Double),
                ("c_mktsegment", Str),
            ],
        ),
        TpchTable::Part => Schema::of(
            "part",
            &[
                ("p_partkey", Int),
                ("p_name", Str),
                ("p_brand", Str),
                ("p_size", Int),
                ("p_retailprice", Double),
            ],
        ),
        TpchTable::Partsupp => Schema::of(
            "partsupp",
            &[
                ("ps_partkey", Int),
                ("ps_suppkey", Int),
                ("ps_availqty", Int),
                ("ps_supplycost", Double),
            ],
        ),
        TpchTable::Orders => Schema::of(
            "orders",
            &[
                ("o_orderkey", Int),
                ("o_custkey", Int),
                ("o_orderstatus", Str),
                ("o_totalprice", Double),
                ("o_orderdate", Date),
            ],
        ),
        TpchTable::Lineitem => Schema::of(
            "lineitem",
            &[
                ("l_orderkey", Int),
                ("l_partkey", Int),
                ("l_suppkey", Int),
                ("l_linenumber", Int),
                ("l_quantity", Int),
                ("l_extendedprice", Double),
                ("l_shipdate", Date),
            ],
        ),
    }
}

/// Deterministic generator for one database instance.
///
/// Every table is generated from an RNG seeded by `(seed, table tag)`, so
/// tables can be generated independently (the wrappers in the source
/// simulator generate them lazily) and the same instance is reproduced
/// regardless of generation order.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    scale: f64,
    seed: u64,
}

impl TpchGenerator {
    /// A generator for scale factor `scale` with RNG seed `seed`.
    pub fn new(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0, "scale factor must be positive");
        TpchGenerator { scale, seed }
    }

    /// Scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    fn rng_for(&self, table: TpchTable) -> StdRng {
        let tag = table as u64;
        StdRng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (tag << 32) ^ tag)
    }

    /// Generate one table.
    pub fn generate(&self, table: TpchTable) -> Relation {
        match table {
            TpchTable::Region => self.gen_region(),
            TpchTable::Nation => self.gen_nation(),
            TpchTable::Supplier => self.gen_supplier(),
            TpchTable::Customer => self.gen_customer(),
            TpchTable::Part => self.gen_part(),
            TpchTable::Partsupp => self.gen_partsupp(),
            TpchTable::Orders => self.gen_orders(),
            TpchTable::Lineitem => self.gen_lineitem(),
        }
    }

    fn gen_region(&self) -> Relation {
        let mut rng = self.rng_for(TpchTable::Region);
        let mut rel = Relation::empty(table_schema(TpchTable::Region));
        for k in 0..text::REGION_COUNT {
            rel.push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::str(text::region_name(k)),
                Value::str(text::sentence(&mut rng, 30)),
            ]));
        }
        rel
    }

    fn gen_nation(&self) -> Relation {
        let mut rng = self.rng_for(TpchTable::Nation);
        let mut rel = Relation::empty(table_schema(TpchTable::Nation));
        for k in 0..text::NATION_COUNT {
            rel.push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::str(text::nation_name(k)),
                Value::Int((k % text::REGION_COUNT) as i64),
                Value::str(text::sentence(&mut rng, 40)),
            ]));
        }
        rel
    }

    fn gen_supplier(&self) -> Relation {
        let mut rng = self.rng_for(TpchTable::Supplier);
        let n = TpchTable::Supplier.cardinality(self.scale);
        let mut rel = Relation::empty(table_schema(TpchTable::Supplier));
        for k in 1..=n {
            rel.push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::str(format!("Supplier#{k:09}")),
                Value::Int(rng.gen_range(0..text::NATION_COUNT) as i64),
                Value::Double((rng.gen_range(-99_999..999_999) as f64) / 100.0),
                Value::str(text::sentence(&mut rng, 35)),
            ]));
        }
        rel
    }

    fn gen_customer(&self) -> Relation {
        let mut rng = self.rng_for(TpchTable::Customer);
        let n = TpchTable::Customer.cardinality(self.scale);
        let mut rel = Relation::empty(table_schema(TpchTable::Customer));
        for k in 1..=n {
            rel.push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::str(format!("Customer#{k:09}")),
                Value::Int(rng.gen_range(0..text::NATION_COUNT) as i64),
                Value::Double((rng.gen_range(-99_999..999_999) as f64) / 100.0),
                Value::str(text::market_segment(&mut rng)),
            ]));
        }
        rel
    }

    fn gen_part(&self) -> Relation {
        let mut rng = self.rng_for(TpchTable::Part);
        let n = TpchTable::Part.cardinality(self.scale);
        let mut rel = Relation::empty(table_schema(TpchTable::Part));
        for k in 1..=n {
            rel.push(Tuple::new(vec![
                Value::Int(k as i64),
                Value::str(text::word(&mut rng, 4)),
                Value::str(text::brand(&mut rng)),
                Value::Int(rng.gen_range(1..=50)),
                Value::Double(900.0 + (k % 1000) as f64 / 10.0),
            ]));
        }
        rel
    }

    fn gen_partsupp(&self) -> Relation {
        let mut rng = self.rng_for(TpchTable::Partsupp);
        let parts = TpchTable::Part.cardinality(self.scale);
        let suppliers = TpchTable::Supplier.cardinality(self.scale) as i64;
        let mut rel = Relation::empty(table_schema(TpchTable::Partsupp));
        // TPC convention: each part supplied by 4 suppliers, spread across
        // the supplier table so every supplier supplies ~4 × parts/suppliers
        // parts.
        for p in 1..=parts as i64 {
            for i in 0..4i64 {
                let s = (p + i * (suppliers / 4).max(1)) % suppliers + 1;
                rel.push(Tuple::new(vec![
                    Value::Int(p),
                    Value::Int(s),
                    Value::Int(rng.gen_range(1..10_000)),
                    Value::Double((rng.gen_range(100..100_000) as f64) / 100.0),
                ]));
            }
        }
        rel
    }

    fn gen_orders(&self) -> Relation {
        let mut rng = self.rng_for(TpchTable::Orders);
        let n = TpchTable::Orders.cardinality(self.scale);
        let customers = TpchTable::Customer.cardinality(self.scale) as i64;
        // One third of customers never appear (TPC rule): draw custkeys from
        // the first 2/3 of the key space, remapped to even coverage.
        let active_customers = (customers * 2 / 3).max(1);
        let mut rel = Relation::empty(table_schema(TpchTable::Orders));
        for k in 1..=n as i64 {
            let cust = rng.gen_range(0..active_customers) * 3 / 2 + 1;
            rel.push(Tuple::new(vec![
                Value::Int(k),
                Value::Int(cust.min(customers)),
                Value::str(if rng.gen_bool(0.5) { "F" } else { "O" }),
                Value::Double((rng.gen_range(1_000..500_000) as f64) / 100.0),
                Value::Date(rng.gen_range(8_400..10_957)), // 1993..1999
            ]));
        }
        rel
    }

    fn gen_lineitem(&self) -> Relation {
        let mut rng = self.rng_for(TpchTable::Lineitem);
        let orders = TpchTable::Orders.cardinality(self.scale) as i64;
        let parts = TpchTable::Part.cardinality(self.scale) as i64;
        let suppliers = TpchTable::Supplier.cardinality(self.scale) as i64;
        let mut rel = Relation::empty(table_schema(TpchTable::Lineitem));
        for o in 1..=orders {
            let lines = rng.gen_range(1..=7);
            for ln in 1..=lines {
                let part = rng.gen_range(1..=parts);
                // supplier must actually supply the part: reuse the partsupp
                // formula so lineitem ⋈ partsupp on (partkey, suppkey) is
                // non-empty.
                let i = rng.gen_range(0..4i64);
                let supp = (part + i * (suppliers / 4).max(1)) % suppliers + 1;
                let qty = rng.gen_range(1..=50);
                rel.push(Tuple::new(vec![
                    Value::Int(o),
                    Value::Int(part),
                    Value::Int(supp),
                    Value::Int(ln),
                    Value::Int(qty),
                    Value::Double(qty as f64 * (900.0 + (part % 1000) as f64 / 10.0)),
                    Value::Date(rng.gen_range(8_400..11_100)),
                ]));
            }
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small() -> TpchGenerator {
        TpchGenerator::new(0.002, 42)
    }

    #[test]
    fn deterministic_across_instances() {
        let a = small().generate(TpchTable::Supplier);
        let b = TpchGenerator::new(0.002, 42).generate(TpchTable::Supplier);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small().generate(TpchTable::Orders);
        let b = TpchGenerator::new(0.002, 43).generate(TpchTable::Orders);
        assert_ne!(a, b);
    }

    #[test]
    fn fixed_tables_ignore_scale() {
        assert_eq!(TpchTable::Region.cardinality(0.001), 5);
        assert_eq!(TpchTable::Nation.cardinality(100.0), 25);
    }

    #[test]
    fn cardinality_ratios_hold() {
        let sf = 0.01;
        assert_eq!(TpchTable::Supplier.cardinality(sf), 100);
        assert_eq!(TpchTable::Customer.cardinality(sf), 1_500);
        assert_eq!(TpchTable::Part.cardinality(sf), 2_000);
        assert_eq!(TpchTable::Partsupp.cardinality(sf), 8_000);
        assert_eq!(TpchTable::Orders.cardinality(sf), 15_000);
    }

    #[test]
    fn partsupp_has_four_suppliers_per_part() {
        let ps = small().generate(TpchTable::Partsupp);
        let parts = TpchTable::Part.cardinality(0.002);
        assert_eq!(ps.len(), parts * 4);
        // the (partkey, suppkey) pairs are unique
        let mut seen = HashSet::new();
        for t in ps.tuples() {
            assert!(seen.insert((t.value(0).clone(), t.value(1).clone())));
        }
    }

    #[test]
    fn primary_keys_dense_and_unique() {
        let sup = small().generate(TpchTable::Supplier);
        let keys: HashSet<i64> = sup
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        assert_eq!(keys.len(), sup.len());
        assert_eq!(*keys.iter().min().unwrap(), 1);
        assert_eq!(*keys.iter().max().unwrap(), sup.len() as i64);
    }

    #[test]
    fn foreign_keys_resolve() {
        let g = small();
        let nat = g.generate(TpchTable::Nation);
        let sup = g.generate(TpchTable::Supplier);
        let nkeys: HashSet<i64> = nat
            .tuples()
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        for s in sup.tuples() {
            assert!(nkeys.contains(&s.value(2).as_int().unwrap()));
        }
    }

    #[test]
    fn orders_skip_a_third_of_customers() {
        let g = TpchGenerator::new(0.01, 7);
        let orders = g.generate(TpchTable::Orders);
        let customers = TpchTable::Customer.cardinality(0.01);
        let with_orders: HashSet<i64> = orders
            .tuples()
            .iter()
            .map(|t| t.value(1).as_int().unwrap())
            .collect();
        // Roughly two thirds of customers have orders.
        let frac = with_orders.len() as f64 / customers as f64;
        assert!(
            (0.45..0.75).contains(&frac),
            "expected ≈2/3 of customers with orders, got {frac}"
        );
    }

    #[test]
    fn lineitem_suppliers_supply_their_parts() {
        let g = small();
        let li = g.generate(TpchTable::Lineitem);
        let ps = g.generate(TpchTable::Partsupp);
        let pairs: HashSet<(i64, i64)> = ps
            .tuples()
            .iter()
            .map(|t| (t.value(0).as_int().unwrap(), t.value(1).as_int().unwrap()))
            .collect();
        for l in li.tuples().iter().take(500) {
            let pair = (l.value(1).as_int().unwrap(), l.value(2).as_int().unwrap());
            assert!(pairs.contains(&pair), "lineitem FK pair {pair:?} missing");
        }
    }

    #[test]
    fn lineitem_lines_per_order_in_range() {
        let li = small().generate(TpchTable::Lineitem);
        let mut per_order: std::collections::HashMap<i64, usize> = Default::default();
        for t in li.tuples() {
            *per_order.entry(t.value(0).as_int().unwrap()).or_default() += 1;
        }
        for (&o, &n) in &per_order {
            assert!((1..=7).contains(&n), "order {o} has {n} lines");
        }
    }

    #[test]
    fn schemas_match_generated_arity() {
        let g = small();
        for t in TpchTable::ALL {
            let rel = g.generate(t);
            assert_eq!(rel.schema(), &table_schema(t), "{}", t.name());
            assert!(!rel.is_empty());
        }
    }

    #[test]
    fn table_name_round_trip() {
        for t in TpchTable::ALL {
            assert_eq!(TpchTable::from_name(t.name()), Some(t));
        }
        assert_eq!(TpchTable::from_name("nope"), None);
    }
}
