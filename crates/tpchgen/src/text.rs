//! Deterministic pseudo-text generation.
//!
//! TPC-D fills name/comment columns with grammar-generated text. The Tukwila
//! experiments only need those columns to (a) occupy realistic space, so that
//! memory budgets and transfer times are meaningful, and (b) be deterministic
//! for a given seed. A syllable sampler satisfies both without reproducing
//! dbgen's grammar.

use rand::Rng;

const SYLLABLES: &[&str] = &[
    "ka", "to", "mi", "ra", "shu", "ben", "dor", "lin", "va", "zet", "pol", "qui", "mar", "ten",
    "sol", "bri", "cal", "dun", "eri", "fos",
];

const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

const BRAND_PREFIXES: &[&str] = &["Brand#1", "Brand#2", "Brand#3", "Brand#4", "Brand#5"];

const NATION_NAMES: &[&str] = &[
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];

const REGION_NAMES: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// A pseudo-word of `syllables` syllables.
pub fn word(rng: &mut impl Rng, syllables: usize) -> String {
    let mut s = String::with_capacity(syllables * 3);
    for _ in 0..syllables {
        s.push_str(SYLLABLES[rng.gen_range(0..SYLLABLES.len())]);
    }
    s
}

/// A pseudo-sentence of roughly `target_len` bytes (comment columns).
pub fn sentence(rng: &mut impl Rng, target_len: usize) -> String {
    let mut s = String::with_capacity(target_len + 8);
    while s.len() < target_len {
        if !s.is_empty() {
            s.push(' ');
        }
        let syllables = rng.gen_range(1..4);
        s.push_str(&word(rng, syllables));
    }
    s
}

/// A TPC-style market segment.
pub fn market_segment(rng: &mut impl Rng) -> &'static str {
    SEGMENTS[rng.gen_range(0..SEGMENTS.len())]
}

/// A TPC-style part brand.
pub fn brand(rng: &mut impl Rng) -> String {
    format!(
        "{}{}",
        BRAND_PREFIXES[rng.gen_range(0..BRAND_PREFIXES.len())],
        rng.gen_range(0..5)
    )
}

/// The canonical TPC-D nation name for a nation key (0..25).
pub fn nation_name(key: usize) -> &'static str {
    NATION_NAMES[key % NATION_NAMES.len()]
}

/// The canonical TPC-D region name for a region key (0..5).
pub fn region_name(key: usize) -> &'static str {
    REGION_NAMES[key % REGION_NAMES.len()]
}

/// Number of nations / regions in the fixed-size tables.
pub const NATION_COUNT: usize = 25;
/// Number of regions.
pub const REGION_COUNT: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn word_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(word(&mut a, 3), word(&mut b, 3));
    }

    #[test]
    fn sentence_reaches_target_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sentence(&mut rng, 40);
        assert!(s.len() >= 40, "got {} bytes", s.len());
        assert!(s.len() < 60, "should not wildly overshoot: {}", s.len());
    }

    #[test]
    fn nation_and_region_names_fixed() {
        assert_eq!(nation_name(0), "ALGERIA");
        assert_eq!(nation_name(24), "UNITED STATES");
        assert_eq!(region_name(3), "EUROPE");
        // wraps rather than panicking
        assert_eq!(nation_name(25), "ALGERIA");
    }

    #[test]
    fn brand_has_expected_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = brand(&mut rng);
        assert!(b.starts_with("Brand#"));
    }
}
