//! # Tukwila
//!
//! A comprehensive Rust reproduction of **"An Adaptive Query Execution
//! System for Data Integration"** (Ives, Florescu, Friedman, Levy, Weld —
//! SIGMOD 1999): the *Tukwila* data integration system.
//!
//! Tukwila answers select-project-join queries over a mediated schema whose
//! relations live in autonomous, network-bound, possibly mirrored data
//! sources — and adapts at runtime to missing statistics, bursty transfer
//! rates, memory pressure, and failing sources. Adaptivity comes in two
//! layers:
//!
//! * **Interleaved planning and execution** — partial plans, pipelined
//!   fragments that materialize and report statistics, incremental
//!   re-optimization from saved optimizer state (with usage pointers), and
//!   query-scrambling-style rescheduling, all coordinated by
//!   event-condition-action rules.
//! * **Adaptive operators** — the double pipelined hash join (with the
//!   Incremental Left Flush and Incremental Symmetric Flush overflow
//!   strategies) and the dynamic collector for overlapping/mirrored
//!   sources.
//!
//! ## Quickstart
//!
//! ```
//! use tukwila::prelude::*;
//!
//! // Deploy a tiny TPC-D-style scenario: generated data served through
//! // simulated network sources, catalog with exact statistics.
//! let deployment = TpchDeployment::builder(0.002, 42)
//!     .tables(&[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier])
//!     .build();
//!
//! // Ask for suppliers with their nations and regions.
//! let query = deployment.query_for(
//!     "suppliers",
//!     &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
//! );
//!
//! let system = deployment.system(OptimizerConfig::default());
//! let result = system.execute(&query).unwrap();
//! assert_eq!(
//!     result.cardinality(),
//!     deployment.db.table(TpchTable::Supplier).len()
//! );
//! ```
//!
//! The crates re-exported here form the full system; see `DESIGN.md` for
//! the architecture map and `EXPERIMENTS.md` for the reproduction of every
//! figure and table in the paper's evaluation.

pub use tukwila_analyze as analyze;
pub use tukwila_catalog as catalog;
pub use tukwila_common as common;
pub use tukwila_core as core;
pub use tukwila_exec as exec;
pub use tukwila_net as net;
pub use tukwila_opt as opt;
pub use tukwila_plan as plan;
pub use tukwila_query as query;
pub use tukwila_service as service;
pub use tukwila_source as source;
pub use tukwila_storage as storage;
pub use tukwila_tpchgen as tpchgen;
pub use tukwila_trace as trace;

/// The most common imports for building and running queries.
pub mod prelude {
    pub use tukwila_analyze::Analyzer;
    pub use tukwila_catalog::{AccessCost, Catalog, OverlapInfo, SourceDesc, TableStats};
    pub use tukwila_common::{DataType, Relation, Schema, TukwilaError, Tuple, TupleBatch, Value};
    pub use tukwila_core::{
        ExecutionStats, QueryResult, StatsQuality, TpchDeployment, TukwilaSystem,
    };
    pub use tukwila_exec::{CancelKind, ExecEnv, QueryControl};
    pub use tukwila_net::{Cluster, WorkerServer};
    pub use tukwila_opt::{Optimizer, OptimizerConfig, PipelinePolicy, ReoptStrategy};
    pub use tukwila_plan::{JoinKind, OverflowMethod, Predicate};
    pub use tukwila_query::{ConjunctiveQuery, MediatedSchema, Reformulator};
    pub use tukwila_service::{
        MemoryGovernor, QueryOptions, QueryResponse, QueryService, QueryServiceConfig, QueryTicket,
        ServiceStats,
    };
    pub use tukwila_source::{
        CacheStats, LinkModel, SimulatedSource, SourceRegistry, SourceResultCache,
    };
    pub use tukwila_tpchgen::{TpchDb, TpchGenerator, TpchTable};
    pub use tukwila_trace::{QueryTrace, TraceEvent, TraceLevel, TraceSnapshot};
}
