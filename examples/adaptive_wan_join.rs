//! Wide-area adaptive join: the double pipelined join versus hybrid hash
//! over slow links (the Figure 3b scenario).
//!
//! Runs `partsupp ⋈ part` twice over a WAN-like link — once with the
//! double pipelined join, once with hybrid hash — and prints when each
//! produced its first tuple and when it finished. The DPJ's first tuple
//! arrives while data is still trickling in; the hybrid join cannot emit
//! anything until the entire inner relation has crossed the network.
//!
//! ```sh
//! cargo run --release --example adaptive_wan_join
//! ```

use std::sync::Arc;
use std::time::Duration;

use tukwila::exec::{build_operator, run_fragment_observed, ExecEnv, PlanRuntime};
use tukwila::plan::{JoinKind, PlanBuilder};
use tukwila::prelude::*;

fn run(kind: JoinKind, deployment: &TpchDeployment) -> (Duration, Duration, u64) {
    let mut b = PlanBuilder::new();
    let ps = b.wrapper_scan("partsupp");
    let p = b.wrapper_scan("part");
    let join = b.join(kind, ps, p, "ps_partkey", "p_partkey");
    let frag = b.fragment(join, "result");
    let plan = b.build(frag);

    let env = ExecEnv::new(deployment.registry.clone());
    let rt = PlanRuntime::for_plan(&plan, env);
    let mut first = None;
    let mut last = Duration::ZERO;
    let mut count = 0;
    let report = run_fragment_observed(&plan, frag, &rt, &mut |n, at| {
        if n == 1 {
            first = Some(at);
        }
        last = at;
        count = n;
    })
    .expect("fragment run");
    let _ = build_operator; // (re-exported entry point; see docs)
    let _ = Arc::strong_count(&rt);
    match report.outcome {
        tukwila::exec::FragmentOutcome::Completed { .. } => {}
        other => panic!("unexpected outcome {other:?}"),
    }
    (first.unwrap_or(last), report.duration, count)
}

fn main() {
    // partsupp is the larger relation; both sources sit behind a slow
    // wide-area link (scaled from the paper's 82 KB/s / 145 ms RTT path).
    let deployment = TpchDeployment::builder(0.004, 99)
        .tables(&[TpchTable::Partsupp, TpchTable::Part])
        .default_link(LinkModel::wide_area(0.3))
        .build();

    println!("partsupp ⋈ part over a wide-area link:");
    for (label, kind) in [
        ("double pipelined", JoinKind::DoublePipelined),
        ("hybrid hash     ", JoinKind::HybridHash),
    ] {
        let (first, total, n) = run(kind, &deployment);
        println!("  {label}: first tuple {first:>10.2?}   completed {total:>10.2?}   ({n} tuples)");
    }
    println!("(the DPJ streams results while the network is still busy)");
}
