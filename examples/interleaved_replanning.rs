//! Interleaved planning and execution (§3, §6.4): watch the optimizer
//! recover from wrong statistics mid-query.
//!
//! The catalog is given join selectivities that are 50× too high, so the
//! initial plan is built on bad cardinality estimates. With the
//! materialize-and-replan policy, each fragment's actual cardinality is
//! compared against the estimate at its materialization point; a 2×
//! discrepancy fires the `replan` rule, execution returns to the optimizer
//! with corrected statistics, and the remaining joins are re-ordered —
//! while every completed materialization is reused.
//!
//! ```sh
//! cargo run --release --example interleaved_replanning
//! ```

use tukwila::prelude::*;

fn main() {
    let tables = [
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Partsupp,
        TpchTable::Part,
    ];
    let deployment = TpchDeployment::builder(0.006, 4)
        .tables(&tables)
        .stats(StatsQuality::MisestimatedSelectivities(50.0))
        .build();

    let query = deployment.query_for("parts_by_nation", &tables);

    for (label, policy) in [
        (
            "materialize only      ",
            PipelinePolicy::MaterializeEachJoin,
        ),
        (
            "materialize and replan",
            PipelinePolicy::MaterializeAndReplan,
        ),
        ("fully pipelined       ", PipelinePolicy::FullyPipelined),
    ] {
        // modest memory so bad estimates hurt (overflowing joins)
        let config = OptimizerConfig {
            policy,
            join_memory_budget: 256 << 10,
            ..OptimizerConfig::default()
        };
        let system = deployment.system(config);
        let result = system.execute(&query).expect("query should succeed");
        println!(
            "{label}: {:>8} tuples in {:>9.2?}  (replans: {}, fragments: {}, spill IO: {} tuples)",
            result.cardinality(),
            result.stats.duration,
            result.stats.replans,
            result.stats.fragments_run,
            result.stats.spill_tuple_io(),
        );
    }

    let gold = deployment.gold(&query).expect("gold");
    println!("expected cardinality: {}", gold.len());
}
