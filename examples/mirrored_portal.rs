//! A data-integration portal over *mirrored, unreliable* sources — the
//! dynamic collector in action (§4.1 of the paper).
//!
//! Scenario: a bibliography-style portal serves `supplier` data from three
//! mirrors: the primary is down, the second is slow, the third is fast but
//! listed last in the catalog. The reformulator produces a disjunctive
//! leaf; the optimizer lowers it to a dynamic collector whose policy rules
//! contact sources in catalog-cost order and fall back on error/timeout —
//! the query succeeds without user intervention.
//!
//! ```sh
//! cargo run --release --example mirrored_portal
//! ```

use std::time::Duration;

use tukwila::prelude::*;

fn main() {
    let slow = LinkModel {
        initial_delay: Duration::from_millis(40),
        per_tuple: Duration::from_micros(200),
        ..LinkModel::instant()
    };

    let deployment = TpchDeployment::builder(0.01, 7)
        .tables(&[TpchTable::Nation, TpchTable::Supplier])
        // primary `supplier` source refuses connections
        .link(TpchTable::Supplier, LinkModel::down())
        // two mirrors with different health
        .mirror(TpchTable::Supplier, "supplier_mirror_slow", slow)
        .mirror(
            TpchTable::Supplier,
            "supplier_mirror_fast",
            LinkModel::lan(0.02),
        )
        .build();

    let query = deployment.query_for("who_supplies", &[TpchTable::Supplier, TpchTable::Nation]);

    let config = OptimizerConfig {
        source_timeout_ms: Some(150), // collector latency watchdog
        ..OptimizerConfig::default()
    };
    let system = deployment.system(config);

    let result = system
        .execute(&query)
        .expect("mirrors should cover the outage");

    println!(
        "answered from mirrors despite a dead primary: {} tuples in {:?}",
        result.cardinality(),
        result.stats.duration
    );

    let gold = deployment.gold(&query).expect("gold");
    assert!(result.relation.bag_eq_unordered(&gold));
    println!("result verified against gold ✓");
}
