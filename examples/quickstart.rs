//! Quickstart: deploy a small TPC-D-style scenario and run an adaptive
//! query end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tukwila::prelude::*;

fn main() {
    // 1. Deploy: generate data and serve it through simulated network
    //    sources (a LAN-like link), with exact catalog statistics.
    let deployment = TpchDeployment::builder(0.01, 42)
        .tables(&[
            TpchTable::Region,
            TpchTable::Nation,
            TpchTable::Supplier,
            TpchTable::Partsupp,
        ])
        .default_link(LinkModel::lan(0.05))
        .build();

    // 2. Pose a conjunctive query over the mediated schema: which parts do
    //    suppliers in each region supply? (region ⋈ nation ⋈ supplier ⋈
    //    partsupp along the foreign keys.)
    let query = deployment.query_for(
        "supply_chain",
        &[
            TpchTable::Region,
            TpchTable::Nation,
            TpchTable::Supplier,
            TpchTable::Partsupp,
        ],
    );

    // 3. Execute with the adaptive policy: double pipelined joins while
    //    memory estimates allow, hybrid hash with materialization above,
    //    replan rules at every materialization point.
    let system = deployment.system(OptimizerConfig::default());
    let result = system.execute(&query).expect("query should succeed");

    println!(
        "query `{}` returned {} tuples",
        query.name,
        result.cardinality()
    );
    println!("  fragments run:    {}", result.stats.fragments_run);
    println!("  re-optimizations: {}", result.stats.replans);
    println!("  reschedules:      {}", result.stats.reschedules);
    println!("  time to first:    {:?}", result.stats.time_to_first);
    println!("  total time:       {:?}", result.stats.duration);
    println!(
        "  spill I/O:        {} tuples",
        result.stats.spill_tuple_io()
    );

    // First few rows.
    for t in result.relation.tuples().iter().take(5) {
        println!("  {t}");
    }

    // The adaptive result matches a trusted nested-loop evaluation.
    let gold = deployment.gold(&query).expect("gold evaluation");
    assert!(
        result.relation.bag_eq_unordered(&gold),
        "result must match gold"
    );
    println!("verified against gold evaluation ✓");
}
